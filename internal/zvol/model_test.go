package zvol

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestModelBasedLifecycle drives a volume with random operation sequences
// against a shadow model (plain maps), checking after every step that
// object content, snapshot content, and accounting invariants agree.
func TestModelBasedLifecycle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runModel(t, seed, 120)
		})
	}
}

func runModel(t *testing.T, seed int64, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	v, err := New(Config{BlockSize: 4096, Codec: "gzip6", Dedup: true, MinCompressGain: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	live := map[string][]byte{}             // shadow live objects
	snaps := map[string]map[string][]byte{} // shadow snapshots
	var snapOrder []string
	clock := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)
	nextID := 0

	// A small pool of reusable payload fragments makes dedup happen.
	frags := make([][]byte, 6)
	for i := range frags {
		frags[i] = make([]byte, 8192)
		rng.Read(frags[i])
	}
	mkPayload := func() []byte {
		var out []byte
		for n := 1 + rng.Intn(6); n > 0; n-- {
			switch rng.Intn(3) {
			case 0:
				out = append(out, frags[rng.Intn(len(frags))]...)
			case 1:
				out = append(out, make([]byte, 4096*(1+rng.Intn(3)))...) // holes
			default:
				b := make([]byte, 1+rng.Intn(9000))
				rng.Read(b)
				out = append(out, b...)
			}
		}
		return out
	}

	for step := 0; step < steps; step++ {
		clock = clock.Add(time.Hour)
		switch op := rng.Intn(10); {
		case op < 4: // write
			name := fmt.Sprintf("obj%03d", nextID)
			nextID++
			data := mkPayload()
			if _, err := v.WriteObject(name, bytes.NewReader(data)); err != nil {
				t.Fatalf("step %d write: %v", step, err)
			}
			live[name] = data
		case op < 6: // delete
			if name := anyKey(rng, live); name != "" {
				if err := v.DeleteObject(name); err != nil {
					t.Fatalf("step %d delete: %v", step, err)
				}
				delete(live, name)
			}
		case op < 8: // snapshot
			name := fmt.Sprintf("snap%03d", step)
			if _, err := v.Snapshot(name, clock); err != nil {
				t.Fatalf("step %d snapshot: %v", step, err)
			}
			cp := map[string][]byte{}
			for k, d := range live {
				cp[k] = d
			}
			snaps[name] = cp
			snapOrder = append(snapOrder, name)
		default: // delete a random snapshot
			if len(snapOrder) > 0 {
				i := rng.Intn(len(snapOrder))
				name := snapOrder[i]
				snapOrder = append(snapOrder[:i], snapOrder[i+1:]...)
				if err := v.DeleteSnapshot(name); err != nil {
					t.Fatalf("step %d delsnap: %v", step, err)
				}
				delete(snaps, name)
			}
		}

		// Check a random live object and a random snapshot object.
		if name := anyKey(rng, live); name != "" {
			got, err := v.ReadObject(name)
			if err != nil || !bytes.Equal(got, live[name]) {
				t.Fatalf("step %d: live %s diverged (err %v)", step, name, err)
			}
		}
		if len(snapOrder) > 0 {
			sn := snapOrder[rng.Intn(len(snapOrder))]
			if name := anyKey(rng, snaps[sn]); name != "" {
				got, err := v.ReadObjectAt(sn, name)
				if err != nil || !bytes.Equal(got, snaps[sn][name]) {
					t.Fatalf("step %d: snapshot %s/%s diverged (err %v)", step, sn, name, err)
				}
			}
		}
		// Accounting invariants.
		st := v.Stats()
		var logical int64
		for _, d := range live {
			logical += int64(len(d))
		}
		if st.LogicalBytes != logical {
			t.Fatalf("step %d: logical %d, model %d", step, st.LogicalBytes, logical)
		}
		if st.Objects != int64(len(live)) || st.Snapshots != int64(len(snapOrder)) {
			t.Fatalf("step %d: objects/snapshots drifted: %+v", step, st)
		}
	}

	// Teardown: deleting everything frees all storage.
	for name := range live {
		if err := v.DeleteObject(name); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range snapOrder {
		if err := v.DeleteSnapshot(name); err != nil {
			t.Fatal(err)
		}
	}
	st := v.Stats()
	if st.DataBytes != 0 || st.UniqueBlocks != 0 {
		t.Fatalf("teardown leaked storage: %+v", st)
	}
}

func anyKey[V any](rng *rand.Rand, m map[string]V) string {
	if len(m) == 0 {
		return ""
	}
	i := rng.Intn(len(m))
	for k := range m {
		if i == 0 {
			return k
		}
		i--
	}
	return ""
}

// TestReplicationModelBased replays random register/deregister rounds on
// a source volume and propagates each round to a replica incrementally,
// checking the replica converges after every round.
func TestReplicationModelBased(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	src, _ := New(DefaultConfig())
	dst, _ := New(DefaultConfig())
	live := map[string][]byte{}
	var lastSnap string
	clock := time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC)

	frag := make([]byte, 64*1024)
	rng.Read(frag)
	for round := 0; round < 25; round++ {
		clock = clock.Add(24 * time.Hour)
		// Mutate: add an object (mostly shared content), sometimes drop one.
		if rng.Intn(4) == 0 && len(live) > 0 {
			name := anyKey(rng, live)
			if err := src.DeleteObject(name); err != nil {
				t.Fatal(err)
			}
			delete(live, name)
		}
		name := fmt.Sprintf("cache%03d", round)
		data := append([]byte(nil), frag...)
		tail := make([]byte, 1+rng.Intn(32*1024))
		rng.Read(tail)
		data = append(data, tail...)
		if _, err := src.WriteObject(name, bytes.NewReader(data)); err != nil {
			t.Fatal(err)
		}
		live[name] = data

		snap := fmt.Sprintf("s%03d", round)
		if _, err := src.Snapshot(snap, clock); err != nil {
			t.Fatal(err)
		}
		stream, err := src.Send(lastSnap, snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Receive(stream); err != nil {
			t.Fatalf("round %d receive: %v", round, err)
		}
		lastSnap = snap

		// Replica must hold exactly the live set with identical bytes.
		if got, want := len(dst.Objects()), len(live); got != want {
			t.Fatalf("round %d: replica has %d objects, want %d", round, got, want)
		}
		probe := anyKey(rng, live)
		got, err := dst.ReadObject(probe)
		if err != nil || !bytes.Equal(got, live[probe]) {
			t.Fatalf("round %d: replica %s diverged (err %v)", round, probe, err)
		}
	}
}
