// Scrub and block repair: the volume-level half of Squirrel's answer to
// at-rest bit-rot. The paper delegates on-disk integrity to ZFS
// (checksummed blocks, `zpool scrub`, resilvering); this file is that
// substitution. Every block pointer already carries the content hash of
// its logical data, so a scrub walks the live object table, re-reads and
// re-hashes every stored payload, and enumerates the blocks that no
// longer verify. RepairBlock heals one damaged block in place from
// verified replacement data without disturbing the physical layout.
package zvol

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/block"
)

// BlockRef names one logical block of one object — the unit of scrub
// findings and resilver repairs.
type BlockRef struct {
	Object string
	Index  int
}

// ScrubReport summarizes one scrub pass over a volume's live object
// table.
type ScrubReport struct {
	Objects    int // objects walked
	Blocks     int // nonzero blocks verified
	ZeroBlocks int // holes (nothing stored, nothing to verify)

	ScannedBytes int64 // physical payload bytes read and re-hashed

	CorruptBlocks int // payload present but failed checksum/decode
	MissingBlocks int // payload unreadable (unallocated address)

	// Damaged lists every block that failed verification, ordered by
	// object name then block index. Deduplicated blocks shared by several
	// objects appear once per referencing object: that per-object view is
	// exactly what a resilver needs to source repairs.
	Damaged []BlockRef
}

// Clean reports whether the scrub found no damage.
func (r ScrubReport) Clean() bool { return r.CorruptBlocks == 0 && r.MissingBlocks == 0 }

// Scrub verifies every stored block of every live object against its
// block pointer's checksums and reports the damage. It detects 100% of
// at-rest corruption by construction: the pointer records a hash of the
// exact stored payload bytes (physHash) at write time, so any byte
// change to the payload — even one a codec would silently tolerate —
// fails verification.
// Snapshot-only blocks share physical storage with live objects through
// the DDT, so live coverage is what replica serving requires.
func (v *Volume) Scrub() ScrubReport {
	v.mu.RLock()
	defer v.mu.RUnlock()
	var rep ScrubReport
	for _, name := range v.objectNamesLocked() {
		obj := v.objects[name]
		rep.Objects++
		for i, p := range obj.ptrs {
			if p.zero {
				rep.ZeroBlocks++
				continue
			}
			rep.Blocks++
			rep.ScannedBytes += int64(p.physLen)
			if _, err := v.readBlockPtr(p); err != nil {
				if errors.Is(err, ErrCorrupt) {
					rep.CorruptBlocks++
				} else {
					rep.MissingBlocks++ // unreadable address, not a checksum failure
				}
				rep.Damaged = append(rep.Damaged, BlockRef{Object: name, Index: i})
			}
		}
	}
	return rep
}

// objectNamesLocked returns live object names sorted; caller holds v.mu.
func (v *Volume) objectNamesLocked() []string {
	names := make([]string, 0, len(v.objects))
	for n := range v.objects {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CorruptStoredBlock flips one byte of the stored payload backing the
// idx-th logical block of name — the injection point for the at-rest
// bit-rot fault lane. Holes have no storage and cannot rot. With dedup,
// the payload may be shared: rotting it damages every object that
// references the block, exactly as a single bad sector under ZFS would.
func (v *Volume) CorruptStoredBlock(name string, idx int, off int64, xor byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	obj, ok := v.objects[name]
	if !ok {
		return fmt.Errorf("%w: object %s", ErrNotFound, name)
	}
	if idx < 0 || idx >= len(obj.ptrs) {
		return fmt.Errorf("zvol: block %d out of range for %s", idx, name)
	}
	p := obj.ptrs[idx]
	if p.zero {
		return fmt.Errorf("zvol: block %d of %s is a hole, nothing to rot", idx, name)
	}
	return v.store.Corrupt(p.addr, off, xor)
}

// RepairBlock heals the idx-th logical block of name from replacement
// data fetched elsewhere (a peer replica or the PFS). The data is
// verified against the block pointer's recorded checksum before anything
// is written — a corrupt source is rejected with ErrBadRepair — then
// re-encoded exactly as the original write encoded it and rewritten in
// place, leaving the volume bit-identical to its pre-rot state. A shared
// (deduplicated) payload is healed for every referencing object at once.
func (v *Volume) RepairBlock(name string, idx int, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	obj, ok := v.objects[name]
	if !ok {
		return fmt.Errorf("%w: object %s", ErrNotFound, name)
	}
	if idx < 0 || idx >= len(obj.ptrs) {
		return fmt.Errorf("zvol: block %d out of range for %s", idx, name)
	}
	p := obj.ptrs[idx]
	if p.zero {
		return fmt.Errorf("zvol: block %d of %s is a hole, nothing to repair", idx, name)
	}
	if int32(len(data)) != p.logLen {
		return fmt.Errorf("%w: %d bytes, pointer says %d", ErrBadRepair, len(data), p.logLen)
	}
	if block.HashOf(data) != p.hash {
		return ErrBadRepair
	}
	// Re-encode deterministically: same codec, same gain rule, same
	// input ⇒ byte-identical payload of identical length.
	payload := data
	if p.compressed {
		payload = v.codec.Compress(data)
	}
	if int32(len(payload)) != p.physLen || block.HashOf(payload) != p.physHash {
		return fmt.Errorf("zvol: repair re-encode of %s block %d does not match stored form",
			name, idx)
	}
	return v.store.Rewrite(p.addr, payload)
}
