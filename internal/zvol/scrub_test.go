package zvol

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// rotVolume builds a volume with a few objects and returns it plus the
// set of (object, index) refs of nonzero blocks.
func rotVolume(t *testing.T) (*Volume, []BlockRef) {
	t.Helper()
	v, err := New(cfg(4096, "gzip6", true))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("img%d", i)
		if _, err := v.WriteObject(name, bytes.NewReader(mkData(int64(40+i), 64*1024))); err != nil {
			t.Fatal(err)
		}
	}
	var refs []BlockRef
	for _, name := range v.Objects() {
		infos, err := v.BlockInfos(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, bi := range infos {
			if !bi.Zero {
				refs = append(refs, BlockRef{Object: name, Index: i})
			}
		}
	}
	if len(refs) < 10 {
		t.Fatalf("corpus too small: %d nonzero blocks", len(refs))
	}
	return v, refs
}

func TestScrubCleanVolume(t *testing.T) {
	v, refs := rotVolume(t)
	rep := v.Scrub()
	if !rep.Clean() || len(rep.Damaged) != 0 {
		t.Fatalf("clean volume scrubbed dirty: %+v", rep)
	}
	if rep.Objects != 3 || rep.Blocks != len(refs) || rep.ScannedBytes == 0 {
		t.Fatalf("scrub coverage wrong: %+v (want %d blocks)", rep, len(refs))
	}
}

func TestScrubDetectsEveryCorruptBlock(t *testing.T) {
	// 100%-detection: flip one byte in a spread of stored payloads; the
	// scrub must report exactly the damaged refs (plus dedup aliases of
	// the same physical payload), and every injected ref must appear.
	v, refs := rotVolume(t)
	rotted := map[BlockRef]bool{}
	seenAddr := map[uint64]bool{} // rot each physical payload at most once
	for i := 0; i < len(refs); i += 4 {
		r := refs[i]
		infos, _ := v.BlockInfos(r.Object)
		bi := infos[r.Index]
		if seenAddr[bi.Addr] {
			continue
		}
		seenAddr[bi.Addr] = true
		if err := v.CorruptStoredBlock(r.Object, r.Index, int64(i)%int64(bi.PhysLen), 0x5a); err != nil {
			t.Fatal(err)
		}
		rotted[r] = true
	}
	rep := v.Scrub()
	if rep.Clean() {
		t.Fatal("scrub missed injected rot entirely")
	}
	found := map[BlockRef]bool{}
	for _, r := range rep.Damaged {
		found[r] = true
	}
	for r := range rotted {
		if !found[r] {
			t.Fatalf("scrub missed injected corruption at %+v", r)
		}
	}
	if rep.CorruptBlocks != len(rep.Damaged) || rep.MissingBlocks != 0 {
		t.Fatalf("misclassified damage: %+v", rep)
	}
	// Damage must never be readable: the read path fails instead of
	// serving bad bytes.
	some := rep.Damaged[0]
	if _, _, _, err := v.ReadBlock(some.Object, some.Index); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt block read returned %v, want ErrCorrupt", err)
	}
	if _, err := v.ReadObject(some.Object); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt object read returned %v, want ErrCorrupt", err)
	}
}

func TestRepairBlockRestoresBitIdentical(t *testing.T) {
	v, refs := rotVolume(t)
	// Keep the pristine contents to source repairs from (standing in for
	// a healthy peer replica).
	pristine := map[string][]byte{}
	for _, name := range v.Objects() {
		data, err := v.ReadObject(name)
		if err != nil {
			t.Fatal(err)
		}
		pristine[name] = data
	}
	before := v.Stats()
	seenAddr := map[uint64]bool{}
	for i := 0; i < len(refs); i += 3 {
		r := refs[i]
		infos, _ := v.BlockInfos(r.Object)
		if seenAddr[infos[r.Index].Addr] {
			continue // a shared payload double-flipped would self-heal
		}
		seenAddr[infos[r.Index].Addr] = true
		if err := v.CorruptStoredBlock(r.Object, r.Index, 0, 0xff); err != nil {
			t.Fatal(err)
		}
	}
	rep := v.Scrub()
	if rep.Clean() {
		t.Fatal("no damage to repair")
	}
	bs := int64(v.Config().BlockSize)
	for _, r := range rep.Damaged {
		data := pristine[r.Object]
		lo := int64(r.Index) * bs
		hi := lo + bs
		if hi > int64(len(data)) {
			hi = int64(len(data))
		}
		if err := v.RepairBlock(r.Object, r.Index, data[lo:hi]); err != nil {
			t.Fatalf("repair %+v: %v", r, err)
		}
	}
	if rep := v.Scrub(); !rep.Clean() {
		t.Fatalf("damage survives repair: %+v", rep)
	}
	for name, want := range pristine {
		got, err := v.ReadObject(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("object %s not restored: %v", name, err)
		}
	}
	if after := v.Stats(); after != before {
		t.Fatalf("repair disturbed volume accounting: %+v != %+v", after, before)
	}
}

func TestRepairBlockRejectsCorruptSource(t *testing.T) {
	v, refs := rotVolume(t)
	r := refs[0]
	good, _, _, err := v.ReadBlock(r.Object, r.Index)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.CorruptStoredBlock(r.Object, r.Index, 1, 0x01); err != nil {
		t.Fatal(err)
	}
	// A rotten source (wrong bytes of the right length) must be refused
	// and the block stay unreadable.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0x80
	if err := v.RepairBlock(r.Object, r.Index, bad); !errors.Is(err, ErrBadRepair) {
		t.Fatalf("bad repair data accepted: %v", err)
	}
	if _, _, _, err := v.ReadBlock(r.Object, r.Index); !errors.Is(err, ErrCorrupt) {
		t.Fatal("block silently healed by rejected repair")
	}
	// Wrong length is refused too.
	if err := v.RepairBlock(r.Object, r.Index, good[:len(good)-1]); !errors.Is(err, ErrBadRepair) {
		t.Fatalf("short repair data accepted: %v", err)
	}
	// The true bytes heal it.
	if err := v.RepairBlock(r.Object, r.Index, good); err != nil {
		t.Fatal(err)
	}
	if got, _, _, err := v.ReadBlock(r.Object, r.Index); err != nil || !bytes.Equal(got, good) {
		t.Fatalf("repaired block wrong: %v", err)
	}
}

func TestCorruptStoredBlockEdges(t *testing.T) {
	v, _ := rotVolume(t)
	if err := v.CorruptStoredBlock("nope", 0, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown object: %v", err)
	}
	if err := v.CorruptStoredBlock("img0", 1<<20, 0, 1); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
