package zvol

import (
	"bytes"
	"errors"
	"testing"
)

// pair builds a source volume with two snapshots and an empty replica.
func pair(t *testing.T) (*Volume, *Volume) {
	t.Helper()
	src, err := New(cfg(4096, "gzip6", true))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := New(cfg(4096, "gzip6", true))
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestFullSendReceive(t *testing.T) {
	src, dst := pair(t)
	a := mkData(20, 90*1024)
	b := mkData(21, 45*1024)
	src.WriteObject("a", bytes.NewReader(a))
	src.WriteObject("b", bytes.NewReader(b))
	src.Snapshot("s1", day(0))

	st, err := src.Send("", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Receive(st); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string][]byte{"a": a, "b": b} {
		got, err := dst.ReadObject(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("replica %s mismatch: %v", name, err)
		}
	}
	if dst.LatestSnapshot().Name != "s1" {
		t.Fatal("receive must create the snapshot")
	}
}

func TestIncrementalSendShipsOnlyNewBlocks(t *testing.T) {
	src, dst := pair(t)
	shared := mkData(22, 200*1024)
	src.WriteObject("base", bytes.NewReader(shared))
	src.Snapshot("s1", day(0))
	full, _ := src.Send("", "s1")
	if err := dst.Receive(full); err != nil {
		t.Fatal(err)
	}

	// New object that shares all but one block with "base" — like a new
	// VMI cache from the same distro.
	similar := append([]byte(nil), shared...)
	copy(similar[:4096], mkData(99, 4096)) // one new block
	src.WriteObject("cache2", bytes.NewReader(similar))
	src.Snapshot("s2", day(1))

	inc, err := src.Send("s1", "s2")
	if err != nil {
		t.Fatal(err)
	}
	if len(inc.Blocks) != 1 {
		t.Fatalf("incremental stream shipped %d blocks, want 1", len(inc.Blocks))
	}
	if inc.SizeBytes() >= full.SizeBytes() {
		t.Fatal("incremental must be smaller than full")
	}
	if err := dst.Receive(inc); err != nil {
		t.Fatal(err)
	}
	got, err := dst.ReadObject("cache2")
	if err != nil || !bytes.Equal(got, similar) {
		t.Fatalf("replica cache2 mismatch: %v", err)
	}
}

func TestSendReceiveDeletes(t *testing.T) {
	src, dst := pair(t)
	src.WriteObject("dead", bytes.NewReader(mkData(23, 30*1024)))
	src.Snapshot("s1", day(0))
	full, _ := src.Send("", "s1")
	dst.Receive(full)

	src.DeleteObject("dead")
	src.WriteObject("alive", bytes.NewReader(mkData(24, 30*1024)))
	src.Snapshot("s2", day(1))
	inc, _ := src.Send("s1", "s2")
	if len(inc.Deletes) != 1 || inc.Deletes[0] != "dead" {
		t.Fatalf("deletes %v", inc.Deletes)
	}
	if err := dst.Receive(inc); err != nil {
		t.Fatal(err)
	}
	if dst.HasObject("dead") {
		t.Fatal("deleted object survived on replica")
	}
	if !dst.HasObject("alive") {
		t.Fatal("new object missing on replica")
	}
}

func TestReceiveWithoutAncestor(t *testing.T) {
	src, dst := pair(t)
	src.WriteObject("a", bytes.NewReader(mkData(25, 10*1024)))
	src.Snapshot("s1", day(0))
	src.WriteObject("b", bytes.NewReader(mkData(26, 10*1024)))
	src.Snapshot("s2", day(1))
	inc, _ := src.Send("s1", "s2")
	if err := dst.Receive(inc); !errors.Is(err, ErrNotAncestor) {
		t.Fatalf("want ErrNotAncestor, got %v", err)
	}
}

func TestSendUnknownSnapshots(t *testing.T) {
	src, _ := pair(t)
	if _, err := src.Send("", "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	src.Snapshot("s1", day(0))
	if _, err := src.Send("ghost", "s1"); !errors.Is(err, ErrNotAncestor) {
		t.Fatalf("want ErrNotAncestor, got %v", err)
	}
}

func TestReceiveDuplicateSnapshot(t *testing.T) {
	src, dst := pair(t)
	src.WriteObject("a", bytes.NewReader(mkData(27, 10*1024)))
	src.Snapshot("s1", day(0))
	full, _ := src.Send("", "s1")
	if err := dst.Receive(full); err != nil {
		t.Fatal(err)
	}
	if err := dst.Receive(full); !errors.Is(err, ErrSnapExists) {
		t.Fatalf("want ErrSnapExists, got %v", err)
	}
}

func TestReplicaChainConvergesToSource(t *testing.T) {
	// Property: after N registration rounds propagated incrementally, the
	// replica serves byte-identical content for every object, and its
	// dedup stats match the source's.
	src, dst := pair(t)
	var lastSnap string
	contents := map[string][]byte{}
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		data := mkData(int64(30+i), 60*1024)
		contents[name] = data
		src.WriteObject(name, bytes.NewReader(data))
		snap := "s" + name
		src.Snapshot(snap, day(i))
		stm, err := src.Send(lastSnap, snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Receive(stm); err != nil {
			t.Fatal(err)
		}
		lastSnap = snap
	}
	for name, want := range contents {
		got, err := dst.ReadObject(name)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("replica diverged on %s: %v", name, err)
		}
	}
	ss, ds := src.Stats(), dst.Stats()
	if ss.UniqueBlocks != ds.UniqueBlocks || ss.LogicalBytes != ds.LogicalBytes {
		t.Fatalf("replica stats diverged: src %+v dst %+v", ss, ds)
	}
}

func TestStreamSizeAccounting(t *testing.T) {
	src, _ := pair(t)
	src.WriteObject("a", bytes.NewReader(mkData(40, 50*1024)))
	src.Snapshot("s1", day(0))
	st, _ := src.Send("", "s1")
	var payload int64
	for _, b := range st.Blocks {
		payload += int64(len(b))
	}
	if st.SizeBytes() <= payload {
		t.Fatal("stream size must include metadata overhead")
	}
}
