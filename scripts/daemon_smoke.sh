#!/usr/bin/env bash
# Loopback smoke for daemon mode: build race-enabled binaries, start
# squirreld, drive it end to end with ONE squirrelctl invocation
# (-telemetry implies -peers -health, so one run covers register, boot,
# health drama, and telemetry scrape — a second run against the same
# long-lived daemon would hit ErrRegistered by design), then SIGTERM
# and assert a clean drain.
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT

go build -race -o "$bin/squirreld" ./cmd/squirreld
go build -race -o "$bin/squirrelctl" ./cmd/squirrelctl

"$bin/squirreld" -version
"$bin/squirrelctl" -version

# Bind an ephemeral port — ask the kernel with :0, then parse the bound
# address out of the daemon's "listening on" log line. A fixed port
# would collide with a concurrent run (or anything else) on a shared CI
# host.
log="$bin/squirreld.log"
"$bin/squirreld" -addr 127.0.0.1:0 -peers -traced 2>"$log" &
daemon=$!
trap 'rm -rf "$bin"; kill "$daemon" 2>/dev/null || true' EXIT

addr=
for _ in $(seq 100); do
  addr="$(sed -n 's/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -n1)"
  [ -n "$addr" ] && break
  kill -0 "$daemon" 2>/dev/null || { echo "squirreld died before listening:"; cat "$log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "no 'listening on' line in squirreld log:"; cat "$log"; exit 1; }
echo "squirreld bound $addr"

out="$("$bin/squirrelctl" -addr "$addr" -vms 2 -telemetry)"
echo "$out"
grep -q 'registering ' <<<"$out"
grep -q 'boots done' <<<"$out"
grep -q 'health drama' <<<"$out"
grep -q 'squirrel_' <<<"$out"  # Prometheus export made it across the wire

# Exit-code fidelity over the wire: nothing listens on this port → 6.
set +e
"$bin/squirrelctl" -addr 127.0.0.1:1 -vms 1 >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 6 ] || { echo "expected exit 6 for connect failure, got $code"; exit 1; }

kill -TERM "$daemon"
wait "$daemon"
echo "daemon smoke OK: clean SIGTERM drain"
