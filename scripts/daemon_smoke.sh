#!/usr/bin/env bash
# Loopback smoke for daemon mode: build race-enabled binaries, start
# squirreld, drive it end to end with ONE squirrelctl invocation
# (-telemetry implies -peers -health, so one run covers register, boot,
# health drama, and telemetry scrape — a second run against the same
# long-lived daemon would hit ErrRegistered by design), then SIGTERM
# and assert a clean drain.
set -euo pipefail

cd "$(dirname "$0")/.."
bin="$(mktemp -d)"
trap 'rm -rf "$bin"' EXIT

go build -race -o "$bin/squirreld" ./cmd/squirreld
go build -race -o "$bin/squirrelctl" ./cmd/squirrelctl

"$bin/squirreld" -version
"$bin/squirrelctl" -version

# Bind an ephemeral port — ask the kernel with :0, then parse the bound
# address out of the daemon's "listening on" log line. A fixed port
# would collide with a concurrent run (or anything else) on a shared CI
# host.
log="$bin/squirreld.log"
"$bin/squirreld" -addr 127.0.0.1:0 -peers -traced -metrics-addr 127.0.0.1:0 2>"$log" &
daemon=$!
trap 'rm -rf "$bin"; kill "$daemon" 2>/dev/null || true' EXIT

# Two listeners log their bound addresses: the control plane's
# "listening on" line and the HTTP surface's "metrics listening on".
addr= maddr=
for _ in $(seq 100); do
  addr="$(sed -n '/metrics listening/!s/.*listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -n1)"
  maddr="$(sed -n 's/.*metrics listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$log" | head -n1)"
  [ -n "$addr" ] && [ -n "$maddr" ] && break
  kill -0 "$daemon" 2>/dev/null || { echo "squirreld died before listening:"; cat "$log"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "no 'listening on' line in squirreld log:"; cat "$log"; exit 1; }
[ -n "$maddr" ] || { echo "no 'metrics listening on' line in squirreld log:"; cat "$log"; exit 1; }
echo "squirreld bound $addr (metrics $maddr)"

out="$("$bin/squirrelctl" -addr "$addr" -vms 2 -telemetry -watch 2 -watch-interval 100ms)"
echo "$out"
grep -q 'registering ' <<<"$out"
grep -q 'boots done' <<<"$out"
grep -q 'health drama' <<<"$out"
grep -q 'squirrel_' <<<"$out"  # Prometheus export made it across the wire
grep -q 'watch #2' <<<"$out"   # the TWatch stream delivered both updates

# The live HTTP surface serves real counters: the boots the run just
# drove must be visible to a plain scrape.
metrics="$(curl -fsS "http://$maddr/metrics")"
grep -q '^squirrel_op_total{kind="boot"} [1-9]' <<<"$metrics" || {
  echo "metrics scrape missing boot counter:"; echo "$metrics" | head -20; exit 1; }
curl -fsS "http://$maddr/telemetry" | python3 -c 'import json,sys; d=json.load(sys.stdin); assert any(o["kind"]=="boot" and o["count"]>=1 for o in d["ops"]), d["ops"]'
echo "metrics scrape OK: boot counter live on /metrics and /telemetry"

# Exit-code fidelity over the wire: nothing listens on this port → 6.
set +e
"$bin/squirrelctl" -addr 127.0.0.1:1 -vms 1 >/dev/null 2>&1
code=$?
set -e
[ "$code" -eq 6 ] || { echo "expected exit 6 for connect failure, got $code"; exit 1; }

kill -TERM "$daemon"
wait "$daemon"
echo "daemon smoke OK: clean SIGTERM drain"
