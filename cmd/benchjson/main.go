// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result line:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Each object carries the benchmark name, parallelism suffix, iteration
// count, and every reported metric keyed by its unit (ns/op, B/op,
// allocs/op, plus any custom b.ReportMetric units). Non-benchmark lines
// are ignored, so the full `go test` stream can be piped through
// unfiltered.
//
// Benchmark pairs named <Base>Traced / <Base>Untraced additionally
// produce a synthetic <Base>TracingOverhead result whose "overhead-%"
// metric is the relative ns/op cost of tracing — the number the
// telemetry acceptance bar (< 5%) is checked against.
//
// BenchmarkBootStorm/<conc> sub-benchmarks likewise produce a synthetic
// bootstorm_scaling result whose "speedup-x" metric is serialized ns/op
// (/1) divided by the 16-way ns/op — the boot-storm scaling bar (≥ 4x)
// is checked against it.
//
// The BenchmarkColdBootSlowPeerHedged / ...Unhedged pair produces a
// synthetic hedge_tail_gain result whose "p99-speedup-x" metric is the
// unhedged p99 cold-boot latency over the hedged one — the hedged-fetch
// acceptance bar (> 1x, i.e. hedging must cut the tail) is checked
// against it.
//
// BenchmarkIndexChurn produces a synthetic gossip_convergence result
// carrying its "converge-rounds" metric (rounds for the decentralized
// index to converge after an owner crash) and steady-state churn ns/op
// — the CI churn gate checks the round bound against it.
//
// BenchmarkWorkloadTail/<arrivals>-<index> sub-benchmarks fold into one
// workload_tail result keyed "<arrivals>-<index>-<metric>" (p99-ms,
// p999-ms, shed-%, peerhit-%) — the macro boot-latency tail per arrival
// process and index mode that the CI workload gate and later read-path
// PRs target.
//
// BenchmarkGossipScale/nodes=<n> sub-benchmarks fold into one
// gossip_scaling result carrying each scale's per-round cost and
// converge bound plus "per-node-cost-x", the 10k-node per-node round
// cost over the 1k-node one (≈1 means rounds scale linearly with the
// membership).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	results = append(results, overheadPairs(results)...)
	results = append(results, stormScaling(results)...)
	results = append(results, hedgeGain(results)...)
	results = append(results, gossipConvergence(results)...)
	results = append(results, workloadTail(results)...)
	results = append(results, gossipScaling(results)...)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// overheadPairs derives synthetic overhead results from Traced/Untraced
// benchmark pairs. Multiple samples of a pair (from -count) are averaged
// before the delta is taken.
func overheadPairs(results []result) []result {
	mean := make(map[string][]float64) // name → ns/op samples
	for _, r := range results {
		if v, ok := r.Metrics["ns/op"]; ok {
			mean[r.Name] = append(mean[r.Name], v)
		}
	}
	avg := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	var out []result
	for name, traced := range mean {
		base, ok := strings.CutSuffix(name, "Traced")
		if !ok || strings.HasSuffix(name, "Untraced") {
			continue
		}
		untraced, ok := mean[base+"Untraced"]
		if !ok {
			continue
		}
		t, u := avg(traced), avg(untraced)
		if u <= 0 {
			continue
		}
		out = append(out, result{
			Name:       base + "TracingOverhead",
			Procs:      1,
			Iterations: int64(len(traced)),
			Metrics:    map[string]float64{"overhead-%": 100 * (t - u) / u},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// stormScaling derives the bootstorm_scaling result from the
// BenchmarkBootStorm sub-benchmarks: the serialized baseline (/1) ns/op
// over the 16-way ns/op, samples averaged as in overheadPairs.
func stormScaling(results []result) []result {
	mean := make(map[string][]float64)
	for _, r := range results {
		if v, ok := r.Metrics["ns/op"]; ok && strings.HasPrefix(r.Name, "BenchmarkBootStorm/") {
			mean[r.Name] = append(mean[r.Name], v)
		}
	}
	serial, ok := mean["BenchmarkBootStorm/1"]
	storm, ok16 := mean["BenchmarkBootStorm/16"]
	if !ok || !ok16 {
		return nil
	}
	avg := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	s16 := avg(storm)
	if s16 <= 0 {
		return nil
	}
	return []result{{
		Name:       "bootstorm_scaling",
		Procs:      1,
		Iterations: int64(len(serial)),
		Metrics:    map[string]float64{"speedup-x": avg(serial) / s16},
	}}
}

// hedgeGain derives the hedge_tail_gain result from the slow-peer
// cold-boot pair: unhedged p99 latency over hedged p99 latency, samples
// averaged as in overheadPairs. A gain above 1 means hedging cut the
// latency tail.
func hedgeGain(results []result) []result {
	mean := make(map[string][]float64)
	for _, r := range results {
		if v, ok := r.Metrics["p99-ms"]; ok && strings.HasPrefix(r.Name, "BenchmarkColdBootSlowPeer") {
			mean[r.Name] = append(mean[r.Name], v)
		}
	}
	unhedged, ok := mean["BenchmarkColdBootSlowPeerUnhedged"]
	hedged, okH := mean["BenchmarkColdBootSlowPeerHedged"]
	if !ok || !okH {
		return nil
	}
	avg := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	h := avg(hedged)
	if h <= 0 {
		return nil
	}
	return []result{{
		Name:       "hedge_tail_gain",
		Procs:      1,
		Iterations: int64(len(unhedged)),
		Metrics:    map[string]float64{"p99-speedup-x": avg(unhedged) / h},
	}}
}

// gossipConvergence derives the gossip_convergence result from
// BenchmarkIndexChurn: the converge-rounds metric (owner-crash
// convergence bound measured by the benchmark's probe) alongside the
// steady-state churn ns/op, samples averaged as in overheadPairs.
func gossipConvergence(results []result) []result {
	var rounds, nsop []float64
	for _, r := range results {
		if r.Name != "BenchmarkIndexChurn" {
			continue
		}
		if v, ok := r.Metrics["converge-rounds"]; ok {
			rounds = append(rounds, v)
		}
		if v, ok := r.Metrics["ns/op"]; ok {
			nsop = append(nsop, v)
		}
	}
	if len(rounds) == 0 {
		return nil
	}
	avg := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	m := map[string]float64{"converge-rounds": avg(rounds)}
	if len(nsop) > 0 {
		m["ns/op"] = avg(nsop)
	}
	return []result{{
		Name:       "gossip_convergence",
		Procs:      1,
		Iterations: int64(len(rounds)),
		Metrics:    m,
	}}
}

// workloadTail folds the BenchmarkWorkloadTail/<arrivals>-<index>
// sub-benchmarks into one workload_tail result: every scenario's tail
// quantiles and rates keyed "<arrivals>-<index>-<metric>". The driver
// runs under the deterministic logical clock, so repeated samples of a
// scenario report identical values and the last sample stands.
func workloadTail(results []result) []result {
	m := make(map[string]float64)
	samples := 0
	for _, r := range results {
		scen, ok := strings.CutPrefix(r.Name, "BenchmarkWorkloadTail/")
		if !ok {
			continue
		}
		samples++
		for _, key := range []string{"p99-ms", "p999-ms", "shed-%", "peerhit-%"} {
			if v, ok := r.Metrics[key]; ok {
				m[scen+"-"+key] = v
			}
		}
	}
	if len(m) == 0 {
		return nil
	}
	return []result{{
		Name:       "workload_tail",
		Procs:      1,
		Iterations: int64(samples),
		Metrics:    m,
	}}
}

// gossipScaling folds BenchmarkGossipScale/nodes=<n> into one
// gossip_scaling result: per-scale round cost (ms) and owner-crash
// converge bound, plus per-node-cost-x — the 10k-node per-node round
// cost over the 1k-node one. ≈1 means a gossip round scales linearly
// with the membership; samples are averaged as in overheadPairs.
func gossipScaling(results []result) []result {
	mean := make(map[string]map[string][]float64) // scale → metric → samples
	for _, r := range results {
		scale, ok := strings.CutPrefix(r.Name, "BenchmarkGossipScale/nodes=")
		if !ok {
			continue
		}
		if mean[scale] == nil {
			mean[scale] = make(map[string][]float64)
		}
		for _, key := range []string{"ns/op", "converge-rounds"} {
			if v, ok := r.Metrics[key]; ok {
				mean[scale][key] = append(mean[scale][key], v)
			}
		}
	}
	if len(mean) == 0 {
		return nil
	}
	avg := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	m := make(map[string]float64)
	samples := 0
	for scale, metrics := range mean {
		samples += len(metrics["ns/op"])
		if vs := metrics["ns/op"]; len(vs) > 0 {
			m["round-ms-"+scale] = avg(vs) / 1e6
		}
		if vs := metrics["converge-rounds"]; len(vs) > 0 {
			m["converge-rounds-"+scale] = avg(vs)
		}
	}
	if small, okS := mean["1000"]; okS {
		if big, okB := mean["10000"]; okB && len(small["ns/op"]) > 0 && len(big["ns/op"]) > 0 {
			perSmall := avg(small["ns/op"]) / 1000
			if perSmall > 0 {
				m["per-node-cost-x"] = (avg(big["ns/op"]) / 10000) / perSmall
			}
		}
	}
	return []result{{
		Name:       "gossip_scaling",
		Procs:      1,
		Iterations: int64(samples),
		Metrics:    m,
	}}
}

// parseLine parses one "BenchmarkName-8  10  123 ns/op  4 extra/op" line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{Name: fields[0], Procs: 1, Metrics: make(map[string]float64)}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
