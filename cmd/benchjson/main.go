// Command benchjson converts `go test -bench` text output on stdin into a
// JSON array on stdout, one object per benchmark result line:
//
//	go test -run='^$' -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Each object carries the benchmark name, parallelism suffix, iteration
// count, and every reported metric keyed by its unit (ns/op, B/op,
// allocs/op, plus any custom b.ReportMetric units). Non-benchmark lines
// are ignored, so the full `go test` stream can be piped through
// unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkName-8  10  123 ns/op  4 extra/op" line.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	r := result{Name: fields[0], Procs: 1, Metrics: make(map[string]float64)}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	if len(r.Metrics) == 0 {
		return result{}, false
	}
	return r, true
}
