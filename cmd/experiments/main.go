// Command experiments regenerates the paper's tables and figures from the
// synthetic corpus.
//
// Usage:
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all -count 0.1 -size 0.25
//	experiments -run figtrace -json figtrace.json
//
// Output is one aligned text table per experiment, with the paper's
// qualitative expectation in the trailing comment line. -json
// additionally writes the structured tables (id, title, header, rows)
// to a file, for CI artifacts and downstream tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id (fig2..fig18, tab1..tab4) or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		count    = flag.Float64("count", 0.1, "image-count scale factor (1.0 = documented default)")
		size     = flag.Float64("size", 0.25, "image-size scale factor (1.0 = documented default)")
		jsonPath = flag.String("json", "", "also write the structured tables as JSON to this file")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun with: experiments -run <id>|all [-count f] [-size f]")
		}
		return
	}

	scale := experiments.Scale{Count: *count, Size: *size}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Find(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}
	type jsonTable struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Header  []string   `json:"header"`
		Rows    [][]string `json:"rows"`
		Comment string     `json:"comment,omitempty"`
	}
	var results []jsonTable
	for _, e := range todo {
		start := time.Now()
		tb, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		fmt.Printf("   [%s took %.1fs]\n\n", e.ID, time.Since(start).Seconds())
		results = append(results, jsonTable{ID: e.ID, Title: tb.Title, Header: tb.Header, Rows: tb.Rows, Comment: tb.Comment})
	}
	if *jsonPath != "" {
		b, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d table(s) to %s\n", len(results), *jsonPath)
	}
}
