// Command experiments regenerates the paper's tables and figures from the
// synthetic corpus.
//
// Usage:
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all -count 0.1 -size 0.25
//
// Output is one aligned text table per experiment, with the paper's
// qualitative expectation in the trailing comment line.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id (fig2..fig18, tab1..tab4) or 'all'")
		list  = flag.Bool("list", false, "list available experiments")
		count = flag.Float64("count", 0.1, "image-count scale factor (1.0 = documented default)")
		size  = flag.Float64("size", 0.25, "image-size scale factor (1.0 = documented default)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nrun with: experiments -run <id>|all [-count f] [-size f]")
		}
		return
	}

	scale := experiments.Scale{Count: *count, Size: *size}
	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Find(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		tb, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(tb.Render())
		fmt.Printf("   [%s took %.1fs]\n\n", e.ID, time.Since(start).Seconds())
	}
}
