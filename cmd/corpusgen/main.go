// Command corpusgen builds a synthetic VM image corpus and describes it:
// the Table 2 distro mix, size totals (raw / nonzero / caches), and
// optionally a per-image listing or a dump of one image's bytes.
//
// Usage:
//
//	corpusgen                      # describe the default Azure-mix corpus
//	corpusgen -count 0.1 -size 0.5 # scaled corpus
//	corpusgen -images              # per-image listing
//	corpusgen -dump ubuntu-r0-0001 -out img.raw
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/corpus"
)

func main() {
	var (
		count  = flag.Float64("count", 1, "image-count scale factor")
		size   = flag.Float64("size", 1, "image-size scale factor")
		seed   = flag.Int64("seed", 0, "override corpus seed (0 = default)")
		images = flag.Bool("images", false, "list every image")
		dump   = flag.String("dump", "", "write one image's raw bytes")
		out    = flag.String("out", "", "output file for -dump (default stdout)")
	)
	flag.Parse()

	spec := corpus.DefaultSpec().Scale(*count, *size)
	if *seed != 0 {
		spec.Seed = *seed
	}
	repo, err := corpus.New(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *dump != "" {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		for _, im := range repo.Images {
			if im.ID == *dump {
				if _, err := io.Copy(w, im.Reader()); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				return
			}
		}
		fmt.Fprintf(os.Stderr, "image %q not found\n", *dump)
		os.Exit(1)
	}

	fmt.Printf("corpus: %d images (seed %d)\n", len(repo.Images), spec.Seed)
	fmt.Printf("  raw      %12d bytes (%.1f GB)\n", repo.RawBytes(), float64(repo.RawBytes())/(1<<30))
	fmt.Printf("  nonzero  %12d bytes (%.1f GB)\n", repo.NonzeroBytes(), float64(repo.NonzeroBytes())/(1<<30))
	fmt.Printf("  caches   %12d bytes (%.1f MB)\n", repo.CacheBytes(), float64(repo.CacheBytes())/(1<<20))
	fmt.Println("\nOS distribution (Table 2 mix):")
	for _, d := range spec.Distros {
		fmt.Printf("  %-14s %4d images, %d releases\n", d.Name, repo.ByDistro()[d.Name], d.Releases)
	}
	if *images {
		fmt.Println("\nimages:")
		for _, im := range repo.Images {
			tag := ""
			if im.Misaligned() {
				tag = " (misaligned)"
			}
			fmt.Printf("  %-24s nonzero %8d  cache %7d  raw %10d%s\n",
				im.ID, im.NonzeroSize(), im.CacheSize(), im.RawSize(), tag)
		}
	}
}
