package main

import (
	"context"
	"fmt"
	"io"

	"repro/internal/ctlplane"
)

// runWorkload drives one workload-engine scenario through the session
// and prints the summary. The scenario executes where the deployment
// lives — in-process, or on the daemon when -addr is set — so only the
// args and the fixed-size summary ever cross the wire.
func runWorkload(ctx context.Context, sess ctlplane.Session, args ctlplane.WorkloadArgs, w io.Writer) error {
	info, err := sess.Info()
	if err != nil {
		return err
	}
	if args.Boots == 0 {
		args.Boots = 100 * len(info.ComputeNodes)
	}
	arrivals := args.Arrivals
	if arrivals == "" {
		arrivals = "poisson"
	}
	fmt.Fprintf(w, "workload: %s arrivals, %d boots across %d nodes / %d images (seed %d)...\n",
		arrivals, args.Boots, len(info.ComputeNodes), len(info.Images), args.Seed)

	sum, err := sess.Workload(ctx, args)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "\nworkload summary: %s arrivals, %s clock, %s index\n", sum.Arrivals, sum.Mode, sum.Index)
	fmt.Fprintf(w, "  cluster     %d nodes, %d images\n", sum.Nodes, sum.Images)
	fmt.Fprintf(w, "  boots       %d scheduled: %d admitted, %d shed (%.2f%%), %d executed against the deployment\n",
		sum.Boots, sum.Admitted, sum.Shed, 100*sum.ShedRate, sum.Executed)
	fmt.Fprintf(w, "  replicas    %d warm, %d cold; peer hits %d (%.2f%% of cold)\n",
		sum.Warm, sum.Cold, sum.PeerHits, 100*sum.PeerHitRate)
	fmt.Fprintf(w, "  latency ms  p50 %.2f  p95 %.2f  p99 %.2f  p99.9 %.2f  max %.2f  mean %.2f\n",
		sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.P999Ms, sum.MaxMs, sum.MeanMs)
	fmt.Fprintf(w, "  queueing    admission wait p99 %.2f ms\n", sum.WaitP99Ms)
	fmt.Fprintf(w, "  network     %.2f MB total, %.2f MB peer-served\n",
		float64(sum.NetworkBytes)/(1<<20), float64(sum.PeerBytes)/(1<<20))
	// Wall-clock cost on its own final line: the only nondeterministic
	// output, so determinism checks can strip it and compare the rest.
	fmt.Fprintf(w, "  wall        %.2fs elapsed, %.1f MB driver heap\n", sum.ElapsedSec, sum.HeapMB)
	return nil
}
