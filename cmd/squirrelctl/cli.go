package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/version"
)

// Main is the testable entry point: it parses args, runs the selected
// surface against stdout/stderr, and returns the process exit code.
// args[0] starting with a dash selects the deprecated pre-subcommand
// flag grammar; anything else is a subcommand name.
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return dispatch(args[0], args[1:], stdout, stderr)
	}
	return legacyMain(args, stdout, stderr)
}

// command is one subcommand: a name, a one-line summary for the root
// usage, and a parser that fills the shared options struct.
type command struct {
	name    string
	summary string
	parse   func(args []string, stderr io.Writer) (options, error)
}

// commands in display order.
var commands = []command{
	{"run", "register the corpus and boot VMs on every node (the base scenario)", parseRun},
	{"health", "base scenario plus crash/rot/scrub/resilver drama and health tables", parseHealth},
	{"peers", "base scenario with the peer block exchange on; dumps the content index", parsePeers},
	{"telemetry", "traced full scenario; dumps the unified telemetry snapshot", parseTelemetry},
	{"trace", "traced full scenario; renders the slowest <kind> operation's span tree", parseTrace},
	{"watch", "full scenario while streaming live telemetry deltas", parseWatch},
	{"workload", "drive a workload-engine scenario (arrival process, Zipf tenants, tail latency)", parseWorkload},
	{"version", "print version and exit", nil},
}

func dispatch(name string, args []string, stdout, stderr io.Writer) int {
	if name == "version" {
		fmt.Fprintln(stdout, version.String())
		return 0
	}
	if name == "help" || name == "-h" || name == "--help" {
		rootUsage(stdout)
		return 0
	}
	for _, cmd := range commands {
		if cmd.name != name {
			continue
		}
		o, err := cmd.parse(args, stderr)
		if err != nil {
			if !errors.Is(err, flag.ErrHelp) {
				fmt.Fprintln(stderr, err)
			}
			return exitUsage
		}
		return execute(o, stdout, stderr)
	}
	fmt.Fprintf(stderr, "squirrelctl: unknown command %q\n\n", name)
	rootUsage(stderr)
	return exitUsage
}

func rootUsage(w io.Writer) {
	fmt.Fprintf(w, "usage: squirrelctl <command> [flags]\n\ncommands:\n")
	for _, cmd := range commands {
		fmt.Fprintf(w, "  %-10s %s\n", cmd.name, cmd.summary)
	}
	fmt.Fprintf(w, "\nRun 'squirrelctl <command> -h' for the command's flags.\n")
	fmt.Fprintf(w, "The pre-subcommand flags (squirrelctl -peers -health ...) remain as deprecated aliases.\n")
}

// newFlagSet builds a subcommand FlagSet that reports parse errors
// instead of exiting, with usage on stderr.
func newFlagSet(name, blurb string, stderr io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("squirrelctl "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: squirrelctl %s\n%s\n\nflags:\n", name, blurb)
		fs.PrintDefaults()
	}
	return fs
}

// Shared flag groups. Every subcommand sizes its in-process deployment
// and can target a daemon; the scenario subcommands share the script
// knobs on top.

func addDeployment(fs *flag.FlagSet, o *options, images, nodes int) {
	fs.IntVar(&o.images, "images", images, "images to register (in-process mode; the daemon's corpus governs with -addr)")
	fs.IntVar(&o.nodes, "nodes", nodes, "compute nodes (in-process mode; the daemon's cluster governs with -addr)")
	fs.StringVar(&o.addr, "addr", "", "drive a live squirreld at this TCP address instead of an in-process deployment")
	fs.StringVar(&o.index, "index", "", "content-index implementation: central (default) or gossip (decentralized TTL-lease directory; implies the peer exchange)")
}

func addScenario(fs *flag.FlagSet, o *options) {
	fs.IntVar(&o.vms, "vms", 2, "VMs booted per node")
	fs.StringVar(&o.offline, "offline", "", "node to take offline during registrations")
	fs.BoolVar(&o.verify, "verify", true, "verify boot data against image content")
}

func parseRun(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := newFlagSet("run [flags]", "Register the corpus and boot VMs on every node.", stderr)
	addDeployment(fs, &o, 16, 8)
	addScenario(fs, &o)
	fs.BoolVar(&o.peers, "peers", false, "enable the peer block exchange, drop one replica to force a peer-served cold boot, and dump the content index")
	return o, fs.Parse(args)
}

func parseHealth(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := newFlagSet("health [flags]", "Base scenario, then crash a node, rot another, scrub, resilver, restart, dumping per-node health at each step.", stderr)
	addDeployment(fs, &o, 16, 8)
	addScenario(fs, &o)
	fs.BoolVar(&o.peers, "peers", false, "also enable the peer block exchange")
	o.health = true
	return o, fs.Parse(args)
}

func parsePeers(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := newFlagSet("peers [flags]", "Base scenario with the peer block exchange on: a dropped replica forces a peer-served cold boot, and the content index is dumped.", stderr)
	addDeployment(fs, &o, 16, 8)
	addScenario(fs, &o)
	o.peers = true
	return o, fs.Parse(args)
}

func parseTelemetry(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := newFlagSet("telemetry [flags]", "Traced full scenario (peers + health drama), then the unified telemetry snapshot as JSON and Prometheus text.", stderr)
	addDeployment(fs, &o, 16, 8)
	addScenario(fs, &o)
	o.telemetry = true
	return o, fs.Parse(args)
}

func parseTrace(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := newFlagSet("trace [flags] <kind>", "Traced full scenario, then the span tree of the slowest operation of the given kind (register, boot, scrub, resilver, sync, gc, restart).", stderr)
	addDeployment(fs, &o, 16, 8)
	addScenario(fs, &o)
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return o, fmt.Errorf("squirrelctl trace: need exactly one operation kind, got %d args", fs.NArg())
	}
	o.trace = fs.Arg(0)
	return o, nil
}

func parseWatch(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := newFlagSet("watch [flags]", "Full scenario while streaming live telemetry deltas (in-process: implies tracing; with -addr: the daemon must run -traced).", stderr)
	addDeployment(fs, &o, 16, 8)
	addScenario(fs, &o)
	fs.IntVar(&o.watchN, "n", 3, "telemetry updates to stream during the run")
	fs.DurationVar(&o.watchIvl, "interval", time.Second, "interval between updates")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.watchN < 1 {
		return o, fmt.Errorf("squirrelctl watch: -n must be >= 1")
	}
	return o, nil
}

func parseWorkload(args []string, stderr io.Writer) (options, error) {
	var o options
	fs := newFlagSet("workload [flags]", "Provision the catalog and drive a seeded arrival-process scenario through the deployment's admission/peer machinery, reporting the boot-latency tail.", stderr)
	addDeployment(fs, &o, 16, 64)
	fs.StringVar(&o.wl.Arrivals, "arrivals", "poisson", "arrival process: poisson, diurnal, or flash (the 9am new-image storm)")
	fs.Int64Var(&o.wl.Seed, "seed", 1, "seed driving arrivals, tenant popularity, and cold-node placement")
	fs.IntVar(&o.wl.Boots, "boots", 0, "total boot arrivals to schedule (0 = 100 per node)")
	fs.IntVar(&o.wl.Tenants, "tenants", 0, "tenants with independent Zipf popularity permutations (0 = default 8)")
	fs.Float64Var(&o.wl.ZipfS, "zipf", 0, "Zipf skew exponent > 1 (0 = default 1.2)")
	fs.Float64Var(&o.wl.ColdFrac, "cold", 0, "fraction of nodes booting the storm image cold (0 = default 0.05)")
	fs.StringVar(&o.wl.Mode, "mode", "", "clock mode: logical (deterministic, default) or wall (real elapsed time)")
	fs.IntVar(&o.wl.Slots, "slots", 0, "virtual concurrent boot slots per node (0 = default 2)")
	fs.Float64Var(&o.wl.DeviceMs, "device", 0, "device/hypervisor service milliseconds per boot (0 = default 400)")
	fs.Float64Var(&o.wl.ShedMs, "shed", 0, "virtual admission deadline in milliseconds (0 = default 2000)")
	fs.Float64Var(&o.wl.HorizonSec, "horizon", 0, "arrival window in seconds the rate curves are shaped over (0 = default 3600)")
	fs.IntVar(&o.wl.Workers, "workers", 0, "wall-mode worker pool size (0 = default 8)")
	o.workload = true
	// Cold boots are the point of the scenario: without the peer
	// exchange every miss would fall back to the PFS and the peer-hit
	// rate would read zero no matter what the cluster does.
	o.peers = true
	return o, fs.Parse(args)
}

// legacyMain parses the deprecated pre-subcommand flag grammar. It
// reduces to the same options struct execute takes, so every legacy
// spelling produces output byte-identical to its subcommand.
func legacyMain(args []string, stdout, stderr io.Writer) int {
	o := options{verify: true}
	fs := flag.NewFlagSet("squirrelctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: squirrelctl [flags]   (deprecated spelling; prefer 'squirrelctl <command>')\n\nflags:\n")
		fs.PrintDefaults()
		fmt.Fprintln(stderr)
		rootUsage(stderr)
	}
	fs.IntVar(&o.images, "images", 16, "images to register (in-process mode; the daemon's corpus governs with -addr)")
	fs.IntVar(&o.nodes, "nodes", 8, "compute nodes (in-process mode; the daemon's cluster governs with -addr)")
	fs.IntVar(&o.vms, "vms", 2, "VMs booted per node")
	fs.StringVar(&o.offline, "offline", "", "node to take offline during registrations")
	fs.BoolVar(&o.verify, "verify", true, "verify boot data against image content")
	fs.BoolVar(&o.peers, "peers", false, "enable the peer block exchange, drop one replica to force a peer-served cold boot, and dump the content index")
	fs.StringVar(&o.index, "index", "", "content-index implementation: central (default) or gossip (decentralized TTL-lease directory; implies -peers)")
	fs.BoolVar(&o.health, "health", false, "after the boot wave: crash a node, rot another, scrub, resilver, restart, and dump per-node health at each step")
	fs.BoolVar(&o.telemetry, "telemetry", false, "trace the whole run (implies -peers -health) and dump the unified telemetry snapshot as JSON and Prometheus text")
	fs.StringVar(&o.trace, "trace", "", "trace the whole run and render the span tree of the slowest operation of this kind (register, boot, scrub, resilver, sync, gc, restart)")
	fs.IntVar(&o.watchN, "watch", 0, "stream this many live telemetry updates during the run (in-process: implies tracing; with -addr: the daemon must run -traced)")
	fs.DurationVar(&o.watchIvl, "watch-interval", time.Second, "interval between -watch updates")
	fs.StringVar(&o.addr, "addr", "", "drive a live squirreld at this TCP address instead of an in-process deployment")
	fs.BoolVar(&o.showVersion, "version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if o.showVersion {
		fmt.Fprintln(stdout, version.String())
		return 0
	}
	return execute(o, stdout, stderr)
}
