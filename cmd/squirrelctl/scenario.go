package main

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/fault"
)

// run executes the scenario script selected by o against sess, writing
// every report to w.
func run(ctx context.Context, sess ctlplane.Session, o options, w io.Writer) error {
	info, err := sess.Info()
	if err != nil {
		return err
	}
	images, nodes := info.Images, info.ComputeNodes

	// The watch stream runs concurrently with the script, so its deltas
	// show live operation counts moving; run waits for the stream to
	// finish before dumping the final snapshot.
	var watchDone chan error
	if o.watchN > 0 {
		// The stream goroutine and the script share one writer;
		// serialize so watch lines never land mid-line in a report.
		w = &syncWriter{w: w}
		watchDone = make(chan error, 1)
		go func() {
			watchDone <- sess.Watch(ctx, ctlplane.WatchArgs{Every: o.watchIvl, Count: o.watchN},
				func(u ctlplane.WatchUpdate) error { return printWatch(w, u) })
		}()
	}

	t0 := time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)
	fmt.Fprintf(w, "registering %d images on a %d-node cluster...\n", len(images), len(nodes))
	var diffTotal int64
	for i, id := range images {
		if o.offline != "" && i == len(images)/2 {
			if err := sess.SetOnline(o.offline, false); err != nil {
				return err
			}
			fmt.Fprintf(w, "  %s goes OFFLINE\n", o.offline)
		}
		rep, err := sess.Register(ctx, id, t0.Add(time.Duration(i)*time.Minute))
		if err != nil {
			return err
		}
		diffTotal += rep.DiffBytes
		fmt.Fprintf(w, "  %-24s cache %7d B  diff %7d B  → %d nodes in %.3fs\n",
			rep.ImageID, rep.CacheBytes, rep.DiffBytes, rep.Nodes, rep.XferSec)
	}
	fmt.Fprintf(w, "total diff traffic: %.2f MB for %.2f MB of caches (dedup across caches)\n\n",
		float64(diffTotal)/(1<<20), float64(info.CacheBytes)/(1<<20))

	if o.offline != "" {
		if err := sess.SetOnline(o.offline, true); err != nil {
			return err
		}
		rep, err := sess.SyncNode(ctx, o.offline)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s back online: %s sync, %d bytes\n\n", o.offline, rep.Mode, rep.Bytes)
	}

	if o.peers {
		// Manufacture one cold miss so the boot wave exercises the peer
		// path: the first compute node loses its replica of the first
		// image and must fetch it from a neighbor.
		node, im := nodes[0], images[0]
		if err := sess.DropReplica(node, im); err != nil {
			return err
		}
		fmt.Fprintf(w, "peer exchange on; dropped %s's replica of %s\n\n", node, im)
	}

	fmt.Fprintf(w, "booting %d VMs per node, all from warm replicas...\n", o.vms)
	if err := sess.ResetNetCounters(); err != nil {
		return err
	}
	img := 0
	for _, n := range nodes {
		for v := 0; v < o.vms; v++ {
			im := images[img%len(images)]
			img++
			rep, err := sess.Boot(ctx, core.BootRequest{Image: im, Node: n, Verify: o.verify})
			if err != nil {
				return err
			}
			if !rep.Warm {
				src := rep.PeerNode
				if src == "" {
					src = "-"
				}
				fmt.Fprintf(w, "  %s on %s: COLD (%d PFS bytes, %d peer bytes from %s)\n",
					im, n, rep.NetworkBytes, rep.PeerBytes, src)
			}
		}
	}
	rx, err := sess.ComputeRx()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %d boots done; compute-node network traffic: %d bytes\n\n", img, rx)

	ds, err := sess.Stats()
	if err != nil {
		return err
	}
	st := ds.SCVolume
	fmt.Fprintln(w, "deployment stats:")
	fmt.Fprintf(w, "  %d images registered on %d/%d online nodes (%d stale replicas)\n",
		ds.RegisteredImages, ds.OnlineNodes, ds.ComputeNodes, ds.StaleReplicas)
	fmt.Fprintf(w, "  scVolume: objects %d, logical %.2f MB, disk %.2f MB (data %.2f + DDT %.2f + meta %.2f)\n",
		st.Objects, mb(st.LogicalBytes), mb(st.DiskBytes), mb(st.DataBytes), mb(st.DDTDiskBytes), mb(st.MetaBytes))
	fmt.Fprintf(w, "  per-node replica cost: %.2f MB disk, %.2f MB DDT memory, dedup ratio %.2f\n",
		mb(ds.ReplicaDiskBytes), mb(ds.ReplicaMemBytes), st.DedupRatio)
	if o.peers {
		fmt.Fprintf(w, "\npeer content index: %d objects, %d announcements\n",
			ds.PeerIndexObjects, ds.PeerIndexEntries)
		if ds.IndexSource == "gossip" {
			fmt.Fprintf(w, "  index source: %s (round %d, %d stale leases in live views)\n",
				ds.IndexSource, ds.GossipRound, ds.GossipStale)
		} else {
			fmt.Fprintf(w, "  index source: %s\n", ds.IndexSource)
		}
		fmt.Fprintf(w, "  %-8s  %-6s  %-12s  %s\n", "node", "active", "served reads", "served bytes")
		for _, l := range ds.PeerLoads {
			fmt.Fprintf(w, "  %-8s  %-6d  %-12d  %d\n", l.NodeID, l.Active, l.ServedReads, l.ServedBytes)
		}
		ctr, err := sess.PeerCounters()
		if err != nil {
			return err
		}
		if ctr != "" {
			fmt.Fprintf(w, "  counters:\n")
			for _, line := range strings.Split(strings.TrimRight(ctr, "\n"), "\n") {
				fmt.Fprintf(w, "    %s\n", line)
			}
		}
	}

	if o.health {
		if err := healthDrama(ctx, sess, nodes, t0, w); err != nil {
			return err
		}
	}

	n, err := sess.GarbageCollect(t0.Add(30 * 24 * time.Hour))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ngarbage collection destroyed %d old snapshots\n", n)

	if watchDone != nil {
		if err := <-watchDone; err != nil {
			return err
		}
	}
	if o.telemetry {
		dump, err := sess.Telemetry()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n--- telemetry snapshot (JSON) ---\n%s\n", dump.JSON)
		fmt.Fprintf(w, "\n--- telemetry snapshot (Prometheus text) ---\n%s", dump.Prometheus)
	}
	if o.trace != "" {
		var tree string
		var err error
		if mc, ok := sess.(interface{ TraceMerged(string) (string, error) }); ok {
			// Daemon session with client-side tracing: render the merged
			// tree spanning dial → rpc → daemon dispatch → core operation.
			tree, err = mc.TraceMerged(o.trace)
		} else {
			tree, err = sess.TraceSlowest(o.trace)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n--- slowest %q operation ---\n%s", o.trace, tree)
	}
	return nil
}

// printWatch renders one live telemetry delta from the watch stream.
func printWatch(w io.Writer, u ctlplane.WatchUpdate) error {
	fmt.Fprintf(w, "watch #%d: spans=%d gossip round=%d stale=%d\n",
		u.Seq, u.SpansRecorded, u.GossipRound, u.GossipStale)
	for _, op := range u.Ops {
		fmt.Fprintf(w, "  watch %-14s count=%-6d delta=%-5d errs=%-4d p50=%.2fms p99=%.2fms\n",
			op.Kind, op.Count, op.Delta, op.Errors, op.P50Ms, op.P99Ms)
	}
	if len(u.Counters) > 0 {
		fmt.Fprintf(w, "  watch %d counters changed\n", len(u.Counters))
	}
	return nil
}

// healthDrama walks the crash/rot/scrub/resilver lifecycle on a live
// deployment and dumps the per-node health table after each act — the
// operator's view of §3.5 robustness plus the at-rest integrity layer.
func healthDrama(ctx context.Context, sess ctlplane.Session, nodes []string, t0 time.Time, w io.Writer) error {
	if len(nodes) < 2 {
		return fmt.Errorf("health needs at least 2 compute nodes")
	}
	crashed, rotten := nodes[0], nodes[1]

	// A rot-only plan: nothing in the registration path fires, but
	// InjectRot has deterministic at-rest damage to plant.
	if err := sess.SetFaults(fault.Plan{Seed: 99, Rot: 0.4}); err != nil {
		return err
	}

	fmt.Fprintf(w, "\n--- health drama: crash %s, rot %s ---\n", crashed, rotten)
	if err := sess.CrashNode(crashed, t0.Add(time.Hour)); err != nil {
		return err
	}
	rotted, err := sess.InjectRot(rotten)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s crashed; %d blocks silently rotted on %s (latent — still undetected)\n",
		crashed, rotted, rotten)
	if err := printHealth(sess, w); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nscrubbing all replicas...\n")
	scrubs, err := sess.ScrubAll(ctx, t0.Add(2*time.Hour))
	if err != nil {
		return err
	}
	for id, rep := range scrubs {
		if rep.CorruptBlocks+rep.MissingBlocks > 0 {
			fmt.Fprintf(w, "  %s: %d/%d blocks failed verification — quarantined and withdrawn\n",
				id, rep.CorruptBlocks+rep.MissingBlocks, rep.Blocks)
		}
	}
	if err := printHealth(sess, w); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nresilvering damaged replicas...\n")
	rres, err := sess.ResilverAll(ctx, t0.Add(3*time.Hour))
	if err != nil {
		return err
	}
	for _, r := range rres {
		fmt.Fprintf(w, "  %s: repaired %d/%d (peer %d blocks/%d B, pfs %d blocks/%d B) in %.3fs\n",
			r.NodeID, r.Repaired, r.Blocks, r.PeerBlocks, r.PeerBytes, r.PFSBlocks, r.PFSBytes, r.XferSec)
	}
	rec, err := sess.RestartNode(crashed, t0.Add(4*time.Hour))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %s restarted after %s down: rolled back=%v, scrub %d blocks clean=%v\n",
		rec.NodeID, rec.Downtime, rec.RolledBack, rec.Scrub.Blocks, rec.Damaged == 0)
	ds, err := sess.Stats()
	if err != nil {
		return err
	}
	if ds.LaggingNodes > 0 {
		if _, err := sess.SyncNode(ctx, crashed); err != nil {
			return err
		}
		fmt.Fprintf(w, "  %s healed via SyncNode\n", crashed)
	}
	return printHealth(sess, w)
}

// printHealth dumps the per-node health table.
func printHealth(sess ctlplane.Session, w io.Writer) error {
	sts, err := sess.Health()
	if err != nil {
		return err
	}
	ds, err := sess.Stats()
	if err != nil {
		return err
	}
	gossiping := ds.IndexSource == "gossip"
	// The view/stale columns are the gossip directory's per-node lease
	// view (dashes under the central index, which has no per-node views).
	fmt.Fprintf(w, "\n  %-8s  %-11s  %-7s  %-9s  %-9s  %-5s  %-5s  %-10s  %s\n",
		"node", "state", "corrupt", "withdrawn", "breaker", "view", "stale", "last scrub", "snapshot")
	for _, st := range sts {
		scrub, down := "never", ""
		if !st.LastScrub.IsZero() {
			scrub = st.LastScrub.Format("15:04:05")
		}
		if !st.DownSince.IsZero() {
			down = "  down since " + st.DownSince.Format("15:04:05")
		}
		if st.Unreachable {
			down += "  UNREACHABLE (partitioned)"
		}
		snap := st.Snapshot
		if snap == "" {
			snap = "-"
		}
		breaker := st.Breaker
		if breaker == "" {
			breaker = "-"
		}
		view, stale := "-", "-"
		if gossiping {
			view = fmt.Sprintf("%d", st.ViewLeases)
			stale = fmt.Sprintf("%d", st.ViewStale)
		}
		fmt.Fprintf(w, "  %-8s  %-11s  %-7d  %-9v  %-9s  %-5s  %-5s  %-10s  %s%s\n",
			st.NodeID, st.State, st.CorruptBlocks, st.Withdrawn, breaker, view, stale, scrub, snap, down)
	}
	return nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

// syncWriter makes a writer safe for the watch goroutine and the
// scenario script to share.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
