// Command squirrelctl drives a Squirrel deployment end to end through a
// subcommand CLI: it registers images (with propagation), boots VMs on
// compute nodes, runs failure drama, streams telemetry, and drives the
// workload engine's million-boot scenarios.
//
// By default the deployment is built in-process (the simulator). With
// -addr the same script runs against a live squirreld over the
// versioned TCP wire protocol — same subcommands, same reports, same
// exit codes.
//
// Usage:
//
//	squirrelctl run                           # demo run with defaults
//	squirrelctl run -images 32 -nodes 8 -vms 4
//	squirrelctl run -offline node03           # take one node offline mid-run
//	squirrelctl peers                         # peer exchange on; dumps the index
//	squirrelctl peers -index gossip           # decentralized peer index
//	squirrelctl health                        # crash/rot/scrub/resilver drama + health dump
//	squirrelctl telemetry                     # traced run; dumps the telemetry snapshot
//	squirrelctl trace boot                    # traced run; renders the slowest boot's span tree
//	squirrelctl watch -n 3 -interval 500ms    # stream live telemetry deltas during the run
//	squirrelctl workload -arrivals flash -nodes 10000 -boots 1000000
//	squirrelctl workload -arrivals flash -index gossip
//	squirrelctl run -addr 127.0.0.1:7677      # any subcommand, against a live squirreld
//	squirrelctl version
//
// The pre-subcommand flag spellings (squirrelctl -peers, -health,
// -telemetry, -trace boot, -watch 3, …) keep working as deprecated
// aliases and produce byte-identical output.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/obs"
	"repro/internal/wireclient"
)

// Exit codes, keyed off the core package's sentinel errors so scripts
// can tell operator mistakes (bad image/node names) from real failures.
// The same codes come back from a remote squirreld: error frames carry
// the sentinel family across the wire.
const (
	exitFailure      = 1 // generic failure
	exitUnknownImage = 2
	exitUnknownNode  = 3
	exitNodeOffline  = 4
	exitOverloaded   = 5 // boot shed by admission control; retry after load drains
	exitConnect      = 6 // cannot reach squirreld, or protocol handshake failed

	exitUsage = 2 // flag-parse failures (matches flag.ExitOnError's code)
)

// exitCode maps an error chain onto the ctl's exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownImage):
		return exitUnknownImage
	case errors.Is(err, core.ErrUnknownNode):
		return exitUnknownNode
	case errors.Is(err, core.ErrNodeOffline):
		return exitNodeOffline
	case errors.Is(err, core.ErrOverloaded):
		return exitOverloaded
	case errors.Is(err, wireclient.ErrConnect), errors.Is(err, wireclient.ErrHandshake):
		return exitConnect
	default:
		return exitFailure
	}
}

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}

// options is the one resolved form every invocation reduces to: both the
// subcommand parsers and the deprecated flag-soup parser fill this
// struct and hand it to execute, which is what makes a legacy spelling
// and its subcommand byte-identical — they are the same code path.
type options struct {
	// Deployment shape (in-process mode; the daemon's corpus and cluster
	// govern when addr is set).
	images int
	nodes  int
	addr   string
	index  string

	// Scenario script knobs.
	vms       int
	offline   string
	verify    bool
	peers     bool
	health    bool
	telemetry bool
	trace     string
	watchN    int
	watchIvl  time.Duration

	// Workload engine (the workload subcommand only).
	workload bool
	wl       ctlplane.WorkloadArgs

	showVersion bool
}

// execute resolves flag implications, opens the session, and runs the
// selected surface. All user-visible output goes to stdout; errors and
// usage go to stderr.
func execute(o options, stdout, stderr io.Writer) int {
	if o.telemetry || o.trace != "" {
		// The snapshot (and the trace ring) is most interesting when
		// every op kind fires.
		o.peers, o.health = true, true
	}
	if o.index == "gossip" {
		// A decentralized index without the peer exchange has nothing to
		// resolve.
		o.peers = true
	}
	traced := o.telemetry || o.trace != "" || o.watchN > 0
	sess, err := newSession(o.addr, o.images, o.nodes, o.peers, traced, o.index)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitCode(err)
	}
	defer sess.Close()
	ctx := context.Background()
	if o.workload {
		err = runWorkload(ctx, sess, o.wl, stdout)
	} else {
		err = run(ctx, sess, o, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return exitCode(err)
	}
	return 0
}

// newSession picks the deployment: a live daemon when addr is set, an
// in-process simulator otherwise. Both satisfy ctlplane.Session, so
// run never knows the difference. A traced daemon session gets its own
// client-side telemetry, which is what lets trace render one tree
// spanning both processes.
func newSession(addr string, nImages, nNodes int, peers, traced bool, index string) (ctlplane.Session, error) {
	if addr != "" {
		o := wireclient.Options{Addr: addr}
		if traced {
			o.Obs = obs.New(0)
		}
		return wireclient.Dial(o)
	}
	return ctlplane.NewLocal(ctlplane.Options{
		Images: nImages,
		Nodes:  nNodes,
		Peers:  peers,
		Traced: traced,
		Index:  index,
	})
}
