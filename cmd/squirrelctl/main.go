// Command squirrelctl drives a Squirrel deployment end to end: it
// registers images (with propagation), boots VMs on compute nodes,
// exercises deregistration, garbage collection and offline catch-up,
// and prints the resulting cVolume and network statistics.
//
// By default the deployment is built in-process (the simulator). With
// -addr the same script runs against a live squirreld over the
// versioned TCP wire protocol — same subcommands, same reports, same
// exit codes.
//
// Usage:
//
//	squirrelctl                          # demo run with defaults
//	squirrelctl -images 32 -nodes 8 -vms 4
//	squirrelctl -offline node03          # take one node offline mid-run
//	squirrelctl -peers                   # peer exchange on; dumps the index
//	squirrelctl -index gossip -health    # decentralized peer index; health shows per-node views
//	squirrelctl -health                  # crash/rot/scrub/resilver drama + health dump
//	squirrelctl -telemetry               # traced run; dumps the telemetry snapshot (JSON + Prometheus)
//	squirrelctl -trace boot              # traced run; renders the slowest boot's span tree
//	squirrelctl -addr 127.0.0.1:7677 -telemetry   # same, against a live squirreld
//	squirrelctl -addr 127.0.0.1:7677 -trace boot  # ONE tree spanning client dial → daemon dispatch → core boot
//	squirrelctl -watch 3 -watch-interval 500ms    # stream live telemetry deltas during the run
//	squirrelctl -version
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/version"
	"repro/internal/wireclient"
)

// Exit codes, keyed off the core package's sentinel errors so scripts
// can tell operator mistakes (bad image/node names) from real failures.
// The same codes come back from a remote squirreld: error frames carry
// the sentinel family across the wire.
const (
	exitFailure      = 1 // generic failure
	exitUnknownImage = 2
	exitUnknownNode  = 3
	exitNodeOffline  = 4
	exitOverloaded   = 5 // boot shed by admission control; retry after load drains
	exitConnect      = 6 // cannot reach squirreld, or protocol handshake failed
)

// exitCode maps an error chain onto the ctl's exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownImage):
		return exitUnknownImage
	case errors.Is(err, core.ErrUnknownNode):
		return exitUnknownNode
	case errors.Is(err, core.ErrNodeOffline):
		return exitNodeOffline
	case errors.Is(err, core.ErrOverloaded):
		return exitOverloaded
	case errors.Is(err, wireclient.ErrConnect), errors.Is(err, wireclient.ErrHandshake):
		return exitConnect
	default:
		return exitFailure
	}
}

func main() {
	var (
		nImages   = flag.Int("images", 16, "images to register (in-process mode; the daemon's corpus governs with -addr)")
		nNodes    = flag.Int("nodes", 8, "compute nodes (in-process mode; the daemon's cluster governs with -addr)")
		vms       = flag.Int("vms", 2, "VMs booted per node")
		offline   = flag.String("offline", "", "node to take offline during registrations")
		verify    = flag.Bool("verify", true, "verify boot data against image content")
		peers     = flag.Bool("peers", false, "enable the peer block exchange, drop one replica to force a peer-served cold boot, and dump the content index")
		index     = flag.String("index", "", "content-index implementation: central (default) or gossip (decentralized TTL-lease directory; implies -peers)")
		health    = flag.Bool("health", false, "after the boot wave: crash a node, rot another, scrub, resilver, restart, and dump per-node health at each step")
		telemetry = flag.Bool("telemetry", false, "trace the whole run (implies -peers -health) and dump the unified telemetry snapshot as JSON and Prometheus text")
		trace     = flag.String("trace", "", "trace the whole run and render the span tree of the slowest operation of this kind (register, boot, scrub, resilver, sync, gc, restart)")
		watchN    = flag.Int("watch", 0, "stream this many live telemetry updates during the run (in-process: implies tracing; with -addr: the daemon must run -traced)")
		watchIvl  = flag.Duration("watch-interval", time.Second, "interval between -watch updates")
		addr      = flag.String("addr", "", "drive a live squirreld at this TCP address instead of an in-process deployment")
		showVer   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String())
		return
	}
	if *telemetry || *trace != "" {
		// The snapshot (and the trace ring) is most interesting when
		// every op kind fires.
		*peers, *health = true, true
	}
	if *index == "gossip" {
		// A decentralized index without the peer exchange has nothing to
		// resolve.
		*peers = true
	}
	traced := *telemetry || *trace != "" || *watchN > 0
	sess, err := newSession(*addr, *nImages, *nNodes, *peers, traced, *index)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
	defer sess.Close()
	if err := run(context.Background(), sess, *vms, *offline, *verify, *peers, *health, *telemetry, *trace, *watchN, *watchIvl); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
}

// newSession picks the deployment: a live daemon when addr is set, an
// in-process simulator otherwise. Both satisfy ctlplane.Session, so
// run never knows the difference. A traced daemon session gets its own
// client-side telemetry, which is what lets -trace render one tree
// spanning both processes.
func newSession(addr string, nImages, nNodes int, peers, traced bool, index string) (ctlplane.Session, error) {
	if addr != "" {
		o := wireclient.Options{Addr: addr}
		if traced {
			o.Obs = obs.New(0)
		}
		return wireclient.Dial(o)
	}
	return ctlplane.NewLocal(ctlplane.Options{
		Images: nImages,
		Nodes:  nNodes,
		Peers:  peers,
		Traced: traced,
		Index:  index,
	})
}

func run(ctx context.Context, sess ctlplane.Session, vms int, offline string, verify, peers, health, telemetry bool, trace string, watchN int, watchIvl time.Duration) error {
	info, err := sess.Info()
	if err != nil {
		return err
	}
	images, nodes := info.Images, info.ComputeNodes

	// The watch stream runs concurrently with the script, so its deltas
	// show live operation counts moving; run waits for the stream to
	// finish before dumping the final snapshot.
	var watchDone chan error
	if watchN > 0 {
		watchDone = make(chan error, 1)
		go func() {
			watchDone <- sess.Watch(ctx, ctlplane.WatchArgs{Every: watchIvl, Count: watchN}, printWatch)
		}()
	}

	t0 := time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)
	fmt.Printf("registering %d images on a %d-node cluster...\n", len(images), len(nodes))
	var diffTotal int64
	for i, id := range images {
		if offline != "" && i == len(images)/2 {
			if err := sess.SetOnline(offline, false); err != nil {
				return err
			}
			fmt.Printf("  %s goes OFFLINE\n", offline)
		}
		rep, err := sess.Register(ctx, id, t0.Add(time.Duration(i)*time.Minute))
		if err != nil {
			return err
		}
		diffTotal += rep.DiffBytes
		fmt.Printf("  %-24s cache %7d B  diff %7d B  → %d nodes in %.3fs\n",
			rep.ImageID, rep.CacheBytes, rep.DiffBytes, rep.Nodes, rep.XferSec)
	}
	fmt.Printf("total diff traffic: %.2f MB for %.2f MB of caches (dedup across caches)\n\n",
		float64(diffTotal)/(1<<20), float64(info.CacheBytes)/(1<<20))

	if offline != "" {
		if err := sess.SetOnline(offline, true); err != nil {
			return err
		}
		rep, err := sess.SyncNode(ctx, offline)
		if err != nil {
			return err
		}
		fmt.Printf("%s back online: %s sync, %d bytes\n\n", offline, rep.Mode, rep.Bytes)
	}

	if peers {
		// Manufacture one cold miss so the boot wave exercises the peer
		// path: the first compute node loses its replica of the first
		// image and must fetch it from a neighbor.
		node, im := nodes[0], images[0]
		if err := sess.DropReplica(node, im); err != nil {
			return err
		}
		fmt.Printf("peer exchange on; dropped %s's replica of %s\n\n", node, im)
	}

	fmt.Printf("booting %d VMs per node, all from warm replicas...\n", vms)
	if err := sess.ResetNetCounters(); err != nil {
		return err
	}
	img := 0
	for _, n := range nodes {
		for v := 0; v < vms; v++ {
			im := images[img%len(images)]
			img++
			rep, err := sess.Boot(ctx, core.BootRequest{Image: im, Node: n, Verify: verify})
			if err != nil {
				return err
			}
			if !rep.Warm {
				src := rep.PeerNode
				if src == "" {
					src = "-"
				}
				fmt.Printf("  %s on %s: COLD (%d PFS bytes, %d peer bytes from %s)\n",
					im, n, rep.NetworkBytes, rep.PeerBytes, src)
			}
		}
	}
	rx, err := sess.ComputeRx()
	if err != nil {
		return err
	}
	fmt.Printf("  %d boots done; compute-node network traffic: %d bytes\n\n", img, rx)

	ds, err := sess.Stats()
	if err != nil {
		return err
	}
	st := ds.SCVolume
	fmt.Println("deployment stats:")
	fmt.Printf("  %d images registered on %d/%d online nodes (%d stale replicas)\n",
		ds.RegisteredImages, ds.OnlineNodes, ds.ComputeNodes, ds.StaleReplicas)
	fmt.Printf("  scVolume: objects %d, logical %.2f MB, disk %.2f MB (data %.2f + DDT %.2f + meta %.2f)\n",
		st.Objects, mb(st.LogicalBytes), mb(st.DiskBytes), mb(st.DataBytes), mb(st.DDTDiskBytes), mb(st.MetaBytes))
	fmt.Printf("  per-node replica cost: %.2f MB disk, %.2f MB DDT memory, dedup ratio %.2f\n",
		mb(ds.ReplicaDiskBytes), mb(ds.ReplicaMemBytes), st.DedupRatio)
	if peers {
		fmt.Printf("\npeer content index: %d objects, %d announcements\n",
			ds.PeerIndexObjects, ds.PeerIndexEntries)
		if ds.IndexSource == "gossip" {
			fmt.Printf("  index source: %s (round %d, %d stale leases in live views)\n",
				ds.IndexSource, ds.GossipRound, ds.GossipStale)
		} else {
			fmt.Printf("  index source: %s\n", ds.IndexSource)
		}
		fmt.Printf("  %-8s  %-6s  %-12s  %s\n", "node", "active", "served reads", "served bytes")
		for _, l := range ds.PeerLoads {
			fmt.Printf("  %-8s  %-6d  %-12d  %d\n", l.NodeID, l.Active, l.ServedReads, l.ServedBytes)
		}
		ctr, err := sess.PeerCounters()
		if err != nil {
			return err
		}
		if ctr != "" {
			fmt.Printf("  counters:\n")
			for _, line := range strings.Split(strings.TrimRight(ctr, "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}

	if health {
		if err := healthDrama(ctx, sess, nodes, t0); err != nil {
			return err
		}
	}

	n, err := sess.GarbageCollect(t0.Add(30 * 24 * time.Hour))
	if err != nil {
		return err
	}
	fmt.Printf("\ngarbage collection destroyed %d old snapshots\n", n)

	if watchDone != nil {
		if err := <-watchDone; err != nil {
			return err
		}
	}
	if telemetry {
		dump, err := sess.Telemetry()
		if err != nil {
			return err
		}
		fmt.Printf("\n--- telemetry snapshot (JSON) ---\n%s\n", dump.JSON)
		fmt.Printf("\n--- telemetry snapshot (Prometheus text) ---\n%s", dump.Prometheus)
	}
	if trace != "" {
		var tree string
		var err error
		if mc, ok := sess.(interface{ TraceMerged(string) (string, error) }); ok {
			// Daemon session with client-side tracing: render the merged
			// tree spanning dial → rpc → daemon dispatch → core operation.
			tree, err = mc.TraceMerged(trace)
		} else {
			tree, err = sess.TraceSlowest(trace)
		}
		if err != nil {
			return err
		}
		fmt.Printf("\n--- slowest %q operation ---\n%s", trace, tree)
	}
	return nil
}

// printWatch renders one live telemetry delta from the -watch stream.
func printWatch(u ctlplane.WatchUpdate) error {
	fmt.Printf("watch #%d: spans=%d gossip round=%d stale=%d\n",
		u.Seq, u.SpansRecorded, u.GossipRound, u.GossipStale)
	for _, op := range u.Ops {
		fmt.Printf("  watch %-14s count=%-6d delta=%-5d errs=%-4d p50=%.2fms p99=%.2fms\n",
			op.Kind, op.Count, op.Delta, op.Errors, op.P50Ms, op.P99Ms)
	}
	if len(u.Counters) > 0 {
		fmt.Printf("  watch %d counters changed\n", len(u.Counters))
	}
	return nil
}

// healthDrama walks the crash/rot/scrub/resilver lifecycle on a live
// deployment and dumps the per-node health table after each act — the
// operator's view of §3.5 robustness plus the at-rest integrity layer.
func healthDrama(ctx context.Context, sess ctlplane.Session, nodes []string, t0 time.Time) error {
	if len(nodes) < 2 {
		return fmt.Errorf("-health needs at least 2 compute nodes")
	}
	crashed, rotten := nodes[0], nodes[1]

	// A rot-only plan: nothing in the registration path fires, but
	// InjectRot has deterministic at-rest damage to plant.
	if err := sess.SetFaults(fault.Plan{Seed: 99, Rot: 0.4}); err != nil {
		return err
	}

	fmt.Printf("\n--- health drama: crash %s, rot %s ---\n", crashed, rotten)
	if err := sess.CrashNode(crashed, t0.Add(time.Hour)); err != nil {
		return err
	}
	rotted, err := sess.InjectRot(rotten)
	if err != nil {
		return err
	}
	fmt.Printf("%s crashed; %d blocks silently rotted on %s (latent — still undetected)\n",
		crashed, rotted, rotten)
	if err := printHealth(sess); err != nil {
		return err
	}

	fmt.Printf("\nscrubbing all replicas...\n")
	scrubs, err := sess.ScrubAll(ctx, t0.Add(2*time.Hour))
	if err != nil {
		return err
	}
	for id, rep := range scrubs {
		if rep.CorruptBlocks+rep.MissingBlocks > 0 {
			fmt.Printf("  %s: %d/%d blocks failed verification — quarantined and withdrawn\n",
				id, rep.CorruptBlocks+rep.MissingBlocks, rep.Blocks)
		}
	}
	if err := printHealth(sess); err != nil {
		return err
	}

	fmt.Printf("\nresilvering damaged replicas...\n")
	rres, err := sess.ResilverAll(ctx, t0.Add(3*time.Hour))
	if err != nil {
		return err
	}
	for _, r := range rres {
		fmt.Printf("  %s: repaired %d/%d (peer %d blocks/%d B, pfs %d blocks/%d B) in %.3fs\n",
			r.NodeID, r.Repaired, r.Blocks, r.PeerBlocks, r.PeerBytes, r.PFSBlocks, r.PFSBytes, r.XferSec)
	}
	rec, err := sess.RestartNode(crashed, t0.Add(4*time.Hour))
	if err != nil {
		return err
	}
	fmt.Printf("  %s restarted after %s down: rolled back=%v, scrub %d blocks clean=%v\n",
		rec.NodeID, rec.Downtime, rec.RolledBack, rec.Scrub.Blocks, rec.Damaged == 0)
	ds, err := sess.Stats()
	if err != nil {
		return err
	}
	if ds.LaggingNodes > 0 {
		if _, err := sess.SyncNode(ctx, crashed); err != nil {
			return err
		}
		fmt.Printf("  %s healed via SyncNode\n", crashed)
	}
	return printHealth(sess)
}

// printHealth dumps the per-node health table.
func printHealth(sess ctlplane.Session) error {
	sts, err := sess.Health()
	if err != nil {
		return err
	}
	ds, err := sess.Stats()
	if err != nil {
		return err
	}
	gossiping := ds.IndexSource == "gossip"
	// The view/stale columns are the gossip directory's per-node lease
	// view (dashes under the central index, which has no per-node views).
	fmt.Printf("\n  %-8s  %-11s  %-7s  %-9s  %-9s  %-5s  %-5s  %-10s  %s\n",
		"node", "state", "corrupt", "withdrawn", "breaker", "view", "stale", "last scrub", "snapshot")
	for _, st := range sts {
		scrub, down := "never", ""
		if !st.LastScrub.IsZero() {
			scrub = st.LastScrub.Format("15:04:05")
		}
		if !st.DownSince.IsZero() {
			down = "  down since " + st.DownSince.Format("15:04:05")
		}
		if st.Unreachable {
			down += "  UNREACHABLE (partitioned)"
		}
		snap := st.Snapshot
		if snap == "" {
			snap = "-"
		}
		breaker := st.Breaker
		if breaker == "" {
			breaker = "-"
		}
		view, stale := "-", "-"
		if gossiping {
			view = fmt.Sprintf("%d", st.ViewLeases)
			stale = fmt.Sprintf("%d", st.ViewStale)
		}
		fmt.Printf("  %-8s  %-11s  %-7d  %-9v  %-9s  %-5s  %-5s  %-10s  %s%s\n",
			st.NodeID, st.State, st.CorruptBlocks, st.Withdrawn, breaker, view, stale, scrub, snap, down)
	}
	return nil
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
