// Command squirrelctl drives a simulated Squirrel deployment end to end:
// it builds a cluster, registers images (with propagation), boots VMs on
// compute nodes, exercises deregistration, garbage collection and offline
// catch-up, and prints the resulting cVolume and network statistics.
//
// Usage:
//
//	squirrelctl                          # demo run with defaults
//	squirrelctl -images 32 -nodes 8 -vms 4
//	squirrelctl -offline node03          # take one node offline mid-run
//	squirrelctl -peers                   # peer exchange on; dumps the index
//	squirrelctl -health                  # crash/rot/scrub/resilver drama + health dump
//	squirrelctl -telemetry               # traced run; dumps the telemetry snapshot (JSON + Prometheus)
//	squirrelctl -trace boot              # traced run; renders the slowest boot's span tree
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/peer"
)

// Exit codes, keyed off the core package's sentinel errors so scripts
// can tell operator mistakes (bad image/node names) from real failures.
const (
	exitFailure      = 1 // generic failure
	exitUnknownImage = 2
	exitUnknownNode  = 3
	exitNodeOffline  = 4
	exitOverloaded   = 5 // boot shed by admission control; retry after load drains
)

// exitCode maps an error chain onto the ctl's exit codes.
func exitCode(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownImage):
		return exitUnknownImage
	case errors.Is(err, core.ErrUnknownNode):
		return exitUnknownNode
	case errors.Is(err, core.ErrNodeOffline):
		return exitNodeOffline
	case errors.Is(err, core.ErrOverloaded):
		return exitOverloaded
	default:
		return exitFailure
	}
}

func main() {
	var (
		nImages   = flag.Int("images", 16, "images to register")
		nNodes    = flag.Int("nodes", 8, "compute nodes")
		vms       = flag.Int("vms", 2, "VMs booted per node")
		offline   = flag.String("offline", "", "node to take offline during registrations")
		verify    = flag.Bool("verify", true, "verify boot data against image content")
		peers     = flag.Bool("peers", false, "enable the peer block exchange, drop one replica to force a peer-served cold boot, and dump the content index")
		health    = flag.Bool("health", false, "after the boot wave: crash a node, rot another, scrub, resilver, restart, and dump per-node health at each step")
		telemetry = flag.Bool("telemetry", false, "trace the whole run (implies -peers -health) and dump the unified telemetry snapshot as JSON and Prometheus text")
		trace     = flag.String("trace", "", "trace the whole run and render the span tree of the slowest operation of this kind (register, boot, scrub, resilver, sync, gc, restart)")
	)
	flag.Parse()
	if *telemetry || *trace != "" {
		// The snapshot (and the trace ring) is most interesting when
		// every op kind fires.
		*peers, *health = true, true
	}
	if err := run(context.Background(), *nImages, *nNodes, *vms, *offline, *verify, *peers, *health, *telemetry, *trace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitCode(err))
	}
}

func run(ctx context.Context, nImages, nNodes, vms int, offline string, verify, peers, health bool, telemetry bool, trace string) error {
	spec := corpus.DefaultSpec().Scale(float64(nImages)/607, 0.25)
	repo, err := corpus.New(spec)
	if err != nil {
		return err
	}
	if len(repo.Images) > nImages {
		repo.Images = repo.Images[:nImages]
	}
	cl, err := cluster.New(cluster.GigE, 4, nNodes)
	if err != nil {
		return err
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	if peers {
		cfg.Peer = peer.DefaultPolicy()
		// Per-peer circuit breakers ride along with the exchange so the
		// health table has breaker state to show.
		cfg.Peer.Breaker = peer.DefaultBreakerPolicy()
	}
	if telemetry || trace != "" {
		cfg.Obs = obs.New(0)
	}
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		return err
	}

	t0 := time.Date(2014, 6, 23, 9, 0, 0, 0, time.UTC)
	fmt.Printf("registering %d images on a %d-node cluster...\n", len(repo.Images), nNodes)
	var diffTotal int64
	for i, im := range repo.Images {
		if offline != "" && i == len(repo.Images)/2 {
			if err := sq.SetOnline(offline, false); err != nil {
				return err
			}
			fmt.Printf("  %s goes OFFLINE\n", offline)
		}
		rep, err := sq.Register(ctx, core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Minute)})
		if err != nil {
			return err
		}
		diffTotal += rep.DiffBytes
		fmt.Printf("  %-24s cache %7d B  diff %7d B  → %d nodes in %.3fs\n",
			rep.ImageID, rep.CacheBytes, rep.DiffBytes, rep.Nodes, rep.XferSec)
	}
	fmt.Printf("total diff traffic: %.2f MB for %.2f MB of caches (dedup across caches)\n\n",
		float64(diffTotal)/(1<<20), float64(repo.CacheBytes())/(1<<20))

	if offline != "" {
		if err := sq.SetOnline(offline, true); err != nil {
			return err
		}
		rep, err := sq.SyncNode(ctx, offline)
		if err != nil {
			return err
		}
		fmt.Printf("%s back online: %s sync, %d bytes\n\n", offline, rep.Mode, rep.Bytes)
	}

	if peers {
		// Manufacture one cold miss so the boot wave exercises the peer
		// path: the first compute node loses its replica of the first
		// image and must fetch it from a neighbor.
		node, im := cl.Compute[0].ID, repo.Images[0].ID
		if err := sq.DropReplica(node, im); err != nil {
			return err
		}
		fmt.Printf("peer exchange on; dropped %s's replica of %s\n\n", node, im)
	}

	fmt.Printf("booting %d VMs per node, all from warm replicas...\n", vms)
	cl.ResetCounters()
	img := 0
	for _, n := range cl.Compute {
		for v := 0; v < vms; v++ {
			im := repo.Images[img%len(repo.Images)]
			img++
			rep, err := sq.Boot(ctx, core.BootRequest{Image: im.ID, Node: n.ID, Verify: verify})
			if err != nil {
				return err
			}
			if !rep.Warm {
				src := rep.PeerNode
				if src == "" {
					src = "-"
				}
				fmt.Printf("  %s on %s: COLD (%d PFS bytes, %d peer bytes from %s)\n",
					im.ID, n.ID, rep.NetworkBytes, rep.PeerBytes, src)
			}
		}
	}
	fmt.Printf("  %d boots done; compute-node network traffic: %d bytes\n\n",
		img, cl.ComputeRxTotal())

	ds := sq.Stats()
	st := ds.SCVolume
	fmt.Println("deployment stats:")
	fmt.Printf("  %d images registered on %d/%d online nodes (%d stale replicas)\n",
		ds.RegisteredImages, ds.OnlineNodes, ds.ComputeNodes, ds.StaleReplicas)
	fmt.Printf("  scVolume: objects %d, logical %.2f MB, disk %.2f MB (data %.2f + DDT %.2f + meta %.2f)\n",
		st.Objects, mb(st.LogicalBytes), mb(st.DiskBytes), mb(st.DataBytes), mb(st.DDTDiskBytes), mb(st.MetaBytes))
	fmt.Printf("  per-node replica cost: %.2f MB disk, %.2f MB DDT memory, dedup ratio %.2f\n",
		mb(ds.ReplicaDiskBytes), mb(ds.ReplicaMemBytes), st.DedupRatio)
	if peers {
		fmt.Printf("\npeer content index: %d objects, %d announcements\n",
			ds.PeerIndexObjects, ds.PeerIndexEntries)
		fmt.Printf("  %-8s  %-6s  %-12s  %s\n", "node", "active", "served reads", "served bytes")
		for _, l := range ds.PeerLoads {
			fmt.Printf("  %-8s  %-6d  %-12d  %d\n", l.NodeID, l.Active, l.ServedReads, l.ServedBytes)
		}
		if ctr := sq.PeerIndex().Counters().String(); ctr != "" {
			fmt.Printf("  counters:\n")
			for _, line := range strings.Split(strings.TrimRight(ctr, "\n"), "\n") {
				fmt.Printf("    %s\n", line)
			}
		}
	}

	if health {
		if err := healthDrama(ctx, sq, cl, t0); err != nil {
			return err
		}
	}

	n := sq.GarbageCollect(t0.Add(30 * 24 * time.Hour))
	fmt.Printf("\ngarbage collection destroyed %d old snapshots\n", n)

	if telemetry {
		snap := sq.Telemetry().Snapshot()
		fmt.Printf("\n--- telemetry snapshot (JSON) ---\n%s\n", snap.JSON())
		fmt.Printf("\n--- telemetry snapshot (Prometheus text) ---\n%s", snap.Prometheus())
	}
	if trace != "" {
		sp := sq.Telemetry().SlowestRoot(trace)
		if sp == nil {
			return fmt.Errorf("no completed %q operation in the trace ring (kinds: register, boot, scrub, resilver, sync, gc, restart)", trace)
		}
		fmt.Printf("\n--- slowest %q operation ---\n%s", trace, obs.RenderTree(sp))
	}
	return nil
}

// healthDrama walks the crash/rot/scrub/resilver lifecycle on a live
// deployment and dumps the per-node health table after each act — the
// operator's view of §3.5 robustness plus the at-rest integrity layer.
func healthDrama(ctx context.Context, sq *core.Squirrel, cl *cluster.Cluster, t0 time.Time) error {
	if len(cl.Compute) < 2 {
		return fmt.Errorf("-health needs at least 2 compute nodes")
	}
	crashed, rotten := cl.Compute[0].ID, cl.Compute[1].ID

	// A rot-only plan: nothing in the registration path fires, but
	// InjectRot has deterministic at-rest damage to plant.
	inj, err := fault.New(fault.Plan{Seed: 99, Rot: 0.4})
	if err != nil {
		return err
	}
	sq.SetFaults(inj)

	fmt.Printf("\n--- health drama: crash %s, rot %s ---\n", crashed, rotten)
	if err := sq.CrashNode(crashed, t0.Add(time.Hour)); err != nil {
		return err
	}
	refs, err := sq.InjectRot(rotten)
	if err != nil {
		return err
	}
	fmt.Printf("%s crashed; %d blocks silently rotted on %s (latent — still undetected)\n",
		crashed, len(refs), rotten)
	printHealth(sq)

	fmt.Printf("\nscrubbing all replicas...\n")
	scrubs, err := sq.ScrubAll(ctx, t0.Add(2*time.Hour))
	if err != nil {
		return err
	}
	for id, rep := range scrubs {
		if rep.CorruptBlocks+rep.MissingBlocks > 0 {
			fmt.Printf("  %s: %d/%d blocks failed verification — quarantined and withdrawn\n",
				id, rep.CorruptBlocks+rep.MissingBlocks, rep.Blocks)
		}
	}
	printHealth(sq)

	fmt.Printf("\nresilvering damaged replicas...\n")
	rres, err := sq.ResilverAll(ctx, t0.Add(3*time.Hour))
	if err != nil {
		return err
	}
	for _, r := range rres {
		fmt.Printf("  %s: repaired %d/%d (peer %d blocks/%d B, pfs %d blocks/%d B) in %.3fs\n",
			r.NodeID, r.Repaired, r.Blocks, r.PeerBlocks, r.PeerBytes, r.PFSBlocks, r.PFSBytes, r.XferSec)
	}
	rec, err := sq.RestartNode(crashed, t0.Add(4*time.Hour))
	if err != nil {
		return err
	}
	fmt.Printf("  %s restarted after %s down: rolled back=%v, scrub %d blocks clean=%v\n",
		rec.NodeID, rec.Downtime, rec.RolledBack, rec.Scrub.Blocks, rec.Damaged == 0)
	if sq.Stats().LaggingNodes > 0 {
		if _, err := sq.SyncNode(ctx, crashed); err != nil {
			return err
		}
		fmt.Printf("  %s healed via SyncNode\n", crashed)
	}
	printHealth(sq)
	return nil
}

// printHealth dumps the per-node health table.
func printHealth(sq *core.Squirrel) {
	fmt.Printf("\n  %-8s  %-11s  %-7s  %-9s  %-9s  %-10s  %s\n",
		"node", "state", "corrupt", "withdrawn", "breaker", "last scrub", "snapshot")
	for _, st := range sq.Health() {
		scrub, down := "never", ""
		if !st.LastScrub.IsZero() {
			scrub = st.LastScrub.Format("15:04:05")
		}
		if !st.DownSince.IsZero() {
			down = "  down since " + st.DownSince.Format("15:04:05")
		}
		if st.Unreachable {
			down += "  UNREACHABLE (partitioned)"
		}
		snap := st.Snapshot
		if snap == "" {
			snap = "-"
		}
		breaker := st.Breaker
		if breaker == "" {
			breaker = "-"
		}
		fmt.Printf("  %-8s  %-11s  %-7d  %-9v  %-9s  %-10s  %s%s\n",
			st.NodeID, st.State, st.CorruptBlocks, st.Withdrawn, breaker, scrub, snap, down)
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
