package main

import (
	"bytes"
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ctlplane"
	"repro/internal/daemon"
	"repro/internal/wireclient"
)

// runMain invokes the CLI entry point in-process and captures both
// streams plus the exit code — the whole observable surface of one
// squirrelctl invocation.
func runMain(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = Main(args, &out, &errb)
	return out.String(), errb.String(), code
}

// startDaemon brings up a fresh squirreld over a fresh deployment and
// returns its address. Every invocation that registers images needs its
// own daemon: Register is not idempotent, so a second run against the
// same deployment would fail with ErrRegistered.
func startDaemon(t *testing.T, opts ctlplane.Options) string {
	t.Helper()
	local, err := ctlplane.NewLocal(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := daemon.New(local, daemon.Config{Addr: "127.0.0.1:0", Tel: local.Squirrel().Telemetry()})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv.Addr().String()
}

var (
	// Wall-clock measurements are the only nondeterministic bytes in
	// traced/timed output; scrubbing every number lets the golden diff
	// assert identical *structure* where identical bytes are impossible.
	numRE = regexp.MustCompile(`-?\d+(\.\d+)?`)
	// The workload summary isolates wall cost on one line by contract.
	wallRE = regexp.MustCompile(`(?m)^  wall .*$`)
)

func scrubNums(s string) string { return numRE.ReplaceAllString(s, "N") }

// splitWatch separates the interleaved watch-stream lines from the
// scenario report: the stream races the script, so its lines land at
// nondeterministic positions and must be compared separately.
func splitWatch(s string) (script string, watch []string) {
	var rest []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "watch #") || strings.HasPrefix(line, "  watch ") {
			watch = append(watch, line)
		} else {
			rest = append(rest, line)
		}
	}
	return strings.Join(rest, "\n"), watch
}

// TestGoldenLegacyVsSubcommand pins the deprecation contract: every
// pre-subcommand flag spelling and its subcommand produce byte-identical
// stdout and the same exit code, because both reduce to one options
// struct. The deterministic scenarios compare raw bytes; traced ones
// compare after scrubbing wall-clock numbers.
func TestGoldenLegacyVsSubcommand(t *testing.T) {
	cases := []struct {
		name   string
		legacy []string
		sub    []string
		scrub  bool
	}{
		{"run", []string{"-images", "6", "-nodes", "4"}, []string{"run", "-images", "6", "-nodes", "4"}, false},
		{"offline", []string{"-images", "6", "-nodes", "4", "-offline", "node02"},
			[]string{"run", "-images", "6", "-nodes", "4", "-offline", "node02"}, false},
		{"vms-noverify", []string{"-images", "6", "-nodes", "4", "-vms", "3", "-verify=false"},
			[]string{"run", "-images", "6", "-nodes", "4", "-vms", "3", "-verify=false"}, false},
		{"peers", []string{"-images", "6", "-nodes", "4", "-peers"},
			[]string{"peers", "-images", "6", "-nodes", "4"}, false},
		{"gossip", []string{"-images", "6", "-nodes", "4", "-index", "gossip"},
			[]string{"run", "-images", "6", "-nodes", "4", "-index", "gossip"}, false},
		{"health", []string{"-images", "6", "-nodes", "4", "-health"},
			[]string{"health", "-images", "6", "-nodes", "4"}, false},
		{"health-peers", []string{"-images", "6", "-nodes", "4", "-health", "-peers"},
			[]string{"health", "-images", "6", "-nodes", "4", "-peers"}, false},
		{"telemetry", []string{"-images", "6", "-nodes", "4", "-telemetry"},
			[]string{"telemetry", "-images", "6", "-nodes", "4"}, true},
		{"trace", []string{"-images", "6", "-nodes", "4", "-trace", "boot"},
			[]string{"trace", "-images", "6", "-nodes", "4", "boot"}, true},
		{"version", []string{"-version"}, []string{"version"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legOut, legErr, legCode := runMain(t, tc.legacy...)
			subOut, _, subCode := runMain(t, tc.sub...)
			if legCode != subCode {
				t.Fatalf("exit codes differ: legacy %d, subcommand %d", legCode, subCode)
			}
			if legCode != 0 {
				t.Fatalf("legacy spelling failed (%d): %s", legCode, legErr)
			}
			a, b := legOut, subOut
			if tc.scrub {
				a, b = scrubNums(a), scrubNums(b)
			}
			if a != b {
				t.Fatalf("stdout differs between %v and %v:\n--- legacy ---\n%s\n--- subcommand ---\n%s",
					tc.legacy, tc.sub, legOut, subOut)
			}
		})
	}
}

// TestGoldenWatchEquivalence: the watch stream interleaves with the
// script at nondeterministic positions, so the golden compares the
// script lines byte-for-byte and the stream shape (update count, row
// format) separately.
func TestGoldenWatchEquivalence(t *testing.T) {
	legOut, legErr, legCode := runMain(t, "-images", "6", "-nodes", "4", "-watch", "2", "-watch-interval", "10ms")
	subOut, _, subCode := runMain(t, "watch", "-images", "6", "-nodes", "4", "-n", "2", "-interval", "10ms")
	if legCode != 0 || subCode != 0 {
		t.Fatalf("exit codes: legacy %d (%s), subcommand %d", legCode, legErr, subCode)
	}
	legScript, legWatch := splitWatch(legOut)
	subScript, subWatch := splitWatch(subOut)
	if legScript != subScript {
		t.Fatalf("script lines differ:\n--- legacy ---\n%s\n--- subcommand ---\n%s", legScript, subScript)
	}
	for name, watch := range map[string][]string{"legacy": legWatch, "subcommand": subWatch} {
		headers := 0
		for _, l := range watch {
			if strings.HasPrefix(l, "watch #") {
				headers++
			}
		}
		if headers != 2 {
			t.Fatalf("%s spelling streamed %d watch updates, want 2:\n%s", name, headers, strings.Join(watch, "\n"))
		}
	}
}

// TestGoldenDaemonMode repeats the equivalence over the wire: each
// invocation gets its own fresh squirreld (Register is not idempotent
// across runs) and the two spellings must still match byte-for-byte.
func TestGoldenDaemonMode(t *testing.T) {
	opts := ctlplane.Options{Images: 6, Nodes: 4, Peers: true, Traced: true}
	cases := []struct {
		name   string
		legacy []string
		sub    []string
		scrub  bool
	}{
		{"peers", []string{"-peers", "-addr", "{addr}"}, []string{"peers", "-addr", "{addr}"}, false},
		{"health", []string{"-health", "-peers", "-addr", "{addr}"}, []string{"health", "-peers", "-addr", "{addr}"}, false},
		{"trace", []string{"-trace", "boot", "-addr", "{addr}"}, []string{"trace", "-addr", "{addr}", "boot"}, true},
	}
	withAddr := func(args []string, addr string) []string {
		out := append([]string(nil), args...)
		for i, a := range out {
			if a == "{addr}" {
				out[i] = addr
			}
		}
		return out
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			legAddr := startDaemon(t, opts)
			subAddr := startDaemon(t, opts)
			legOut, legErr, legCode := runMain(t, withAddr(tc.legacy, legAddr)...)
			subOut, _, subCode := runMain(t, withAddr(tc.sub, subAddr)...)
			if legCode != subCode {
				t.Fatalf("exit codes differ: legacy %d, subcommand %d", legCode, subCode)
			}
			if legCode != 0 {
				t.Fatalf("legacy spelling failed (%d): %s", legCode, legErr)
			}
			a, b := legOut, subOut
			if tc.scrub {
				a, b = scrubNums(a), scrubNums(b)
			}
			if a != b {
				t.Fatalf("daemon-mode stdout differs:\n--- legacy ---\n%s\n--- subcommand ---\n%s", legOut, subOut)
			}
		})
	}
}

// TestWorkloadCLIDeterminism: same seed, two invocations over fresh
// deployments — identical stdout once the wall-cost line (the one
// nondeterministic line, by the summary's contract) is stripped.
func TestWorkloadCLIDeterminism(t *testing.T) {
	args := []string{"workload", "-images", "8", "-nodes", "32", "-boots", "3200", "-arrivals", "flash", "-seed", "42"}
	out1, err1, code1 := runMain(t, args...)
	out2, _, code2 := runMain(t, args...)
	if code1 != 0 || code2 != 0 {
		t.Fatalf("exit codes %d/%d (stderr: %s)", code1, code2, err1)
	}
	a := wallRE.ReplaceAllString(out1, "  wall <scrubbed>")
	b := wallRE.ReplaceAllString(out2, "  wall <scrubbed>")
	if a != b {
		t.Fatalf("same seed produced different summaries:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", out1, out2)
	}
	if !wallRE.MatchString(out1) {
		t.Fatalf("summary is missing the wall-cost line:\n%s", out1)
	}
	for _, want := range []string{"flash arrivals", "32 nodes, 8 images", "3200 scheduled", "p99.9"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("summary missing %q:\n%s", want, out1)
		}
	}
}

// TestWorkloadCLIDefaultBoots: -boots 0 resolves to 100 per node.
func TestWorkloadCLIDefaultBoots(t *testing.T) {
	out, errOut, code := runMain(t, "workload", "-images", "4", "-nodes", "8")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "800 boots across 8 nodes") || !strings.Contains(out, "800 scheduled") {
		t.Fatalf("default boots should be 100×nodes:\n%s", out)
	}
}

// TestWorkloadCLIOverWire drives the workload subcommand against a live
// squirreld: the scenario runs on the daemon, only the summary comes
// back, and the output matches the in-process spelling apart from wall
// cost.
func TestWorkloadCLIOverWire(t *testing.T) {
	addr := startDaemon(t, ctlplane.Options{Images: 8, Nodes: 32, Peers: true})
	wireOut, wireErr, wireCode := runMain(t,
		"workload", "-addr", addr, "-boots", "3200", "-arrivals", "flash", "-seed", "42")
	if wireCode != 0 {
		t.Fatalf("exit %d: %s", wireCode, wireErr)
	}
	localOut, _, localCode := runMain(t,
		"workload", "-images", "8", "-nodes", "32", "-boots", "3200", "-arrivals", "flash", "-seed", "42")
	if localCode != 0 {
		t.Fatalf("local exit %d", localCode)
	}
	a := wallRE.ReplaceAllString(wireOut, "")
	b := wallRE.ReplaceAllString(localOut, "")
	if a != b {
		t.Fatalf("wire and in-process workload summaries differ:\n--- wire ---\n%s\n--- local ---\n%s", wireOut, localOut)
	}
}

// TestExitCodes walks the documented exit-code table end to end through
// Main — the contract scripts depend on.
func TestExitCodes(t *testing.T) {
	t.Run("unknown-node-legacy", func(t *testing.T) {
		if _, _, code := runMain(t, "-images", "4", "-nodes", "4", "-offline", "nope"); code != exitUnknownNode {
			t.Fatalf("exit %d, want %d", code, exitUnknownNode)
		}
	})
	t.Run("unknown-node-subcommand", func(t *testing.T) {
		if _, _, code := runMain(t, "run", "-images", "4", "-nodes", "4", "-offline", "nope"); code != exitUnknownNode {
			t.Fatalf("exit %d, want %d", code, exitUnknownNode)
		}
	})
	t.Run("unreachable-daemon", func(t *testing.T) {
		if _, _, code := runMain(t, "run", "-addr", "127.0.0.1:1"); code != exitConnect {
			t.Fatalf("exit %d, want %d", code, exitConnect)
		}
	})
	t.Run("unknown-subcommand", func(t *testing.T) {
		_, errOut, code := runMain(t, "frobnicate")
		if code != exitUsage {
			t.Fatalf("exit %d, want %d", code, exitUsage)
		}
		if !strings.Contains(errOut, "unknown command") || !strings.Contains(errOut, "usage: squirrelctl <command>") {
			t.Fatalf("unknown command should print the root usage:\n%s", errOut)
		}
	})
	t.Run("bad-flag", func(t *testing.T) {
		if _, _, code := runMain(t, "run", "-no-such-flag"); code != exitUsage {
			t.Fatalf("exit %d, want %d", code, exitUsage)
		}
		if _, _, code := runMain(t, "-no-such-flag"); code != exitUsage {
			t.Fatalf("legacy exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("trace-needs-kind", func(t *testing.T) {
		if _, _, code := runMain(t, "trace"); code != exitUsage {
			t.Fatalf("exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("watch-needs-positive-n", func(t *testing.T) {
		if _, _, code := runMain(t, "watch", "-n", "0"); code != exitUsage {
			t.Fatalf("exit %d, want %d", code, exitUsage)
		}
	})
	t.Run("help", func(t *testing.T) {
		out, _, code := runMain(t, "help")
		if code != 0 || !strings.Contains(out, "workload") {
			t.Fatalf("help: exit %d, out:\n%s", code, out)
		}
	})
}

// TestExitCodeMapping covers the sentinel→code table directly,
// including the families a CLI invocation cannot easily trigger.
func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{core.ErrUnknownImage, exitUnknownImage},
		{core.ErrUnknownNode, exitUnknownNode},
		{core.ErrNodeOffline, exitNodeOffline},
		{core.ErrOverloaded, exitOverloaded},
		{wireclient.ErrConnect, exitConnect},
		{wireclient.ErrHandshake, exitConnect},
		{fmt.Errorf("wrapped: %w", core.ErrOverloaded), exitOverloaded},
		{fmt.Errorf("plain failure"), exitFailure},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestRootUsageListsEveryCommand keeps the usage text in sync with the
// command table.
func TestRootUsageListsEveryCommand(t *testing.T) {
	out, _, _ := runMain(t, "help")
	var names []string
	for _, c := range commands {
		names = append(names, c.name)
		if !strings.Contains(out, "  "+c.name) {
			t.Errorf("root usage is missing command %q", c.name)
		}
	}
	sorted := append([]string(nil), names...)
	sort.Strings(sorted)
	if len(names) != 8 {
		t.Errorf("command table has %d entries, want 8: %v", len(names), names)
	}
}
