// Command squirreld is the Squirrel control-plane daemon: it owns a
// deployment (corpus, cluster, cVolumes) and serves the versioned
// wireproto protocol over TCP, so squirrelctl — and anything else that
// links internal/wireclient — drives registrations, boots, and
// lifecycle operations across a real socket instead of in-process
// calls.
//
// Usage:
//
//	squirreld                                  # listen on 127.0.0.1:7677
//	squirreld -addr :7677 -images 32 -nodes 16
//	squirreld -peers -traced                   # peer exchange + telemetry on
//	squirreld -index gossip                    # decentralized peer index, rounds on a ticker
//	squirreld -version
//
// SIGTERM/SIGINT trigger graceful shutdown: the listener closes, no
// new requests are read, in-flight operations (boots included) run to
// completion and flush their responses, then the daemon exits. A
// second signal — or the drain timeout — forces it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/daemon"
	"repro/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7677", "TCP listen address")
		nImages     = flag.Int("images", 16, "corpus size (images the deployment can register)")
		nNodes      = flag.Int("nodes", 8, "compute nodes")
		peers       = flag.Bool("peers", false, "enable the peer block exchange (with circuit breakers)")
		index       = flag.String("index", "", "content-index implementation: central (default) or gossip (decentralized TTL-lease directory; implies -peers)")
		gossipEvery = flag.Duration("gossip-interval", 2*time.Second, "wall-clock gossip round interval when -index gossip")
		traced      = flag.Bool("traced", false, "enable span tracing and unified telemetry")
		bootLatency = flag.Duration("boot-latency", 0, "wall-clock per-boot device wait (demo/benchmark realism)")
		maxConns    = flag.Int("max-conns", daemon.DefaultMaxConns, "concurrent connection limit")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before in-flight requests are cancelled")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	logger := log.New(os.Stderr, "squirreld: ", log.LstdFlags)
	if *index == "gossip" {
		*peers = true
	}
	if err := run(logger, *addr, *nImages, *nNodes, *peers, *traced, *index, *gossipEvery, *bootLatency, *maxConns, *drain); err != nil {
		logger.Println(err)
		os.Exit(1)
	}
}

func run(logger *log.Logger, addr string, nImages, nNodes int, peers, traced bool, index string, gossipEvery, bootLatency time.Duration, maxConns int, drain time.Duration) error {
	local, err := ctlplane.NewLocal(ctlplane.Options{
		Images:      nImages,
		Nodes:       nNodes,
		Peers:       peers,
		Traced:      traced,
		Index:       index,
		BootLatency: bootLatency,
	})
	if err != nil {
		return err
	}
	// Under the decentralized index a live daemon runs gossip rounds on
	// a wall-clock ticker (tests and soaks drive rounds explicitly via
	// GossipTicks instead, so churn scenarios replay deterministically).
	if local.Squirrel().Gossip() != nil && gossipEvery > 0 {
		stopGossip := make(chan struct{})
		defer close(stopGossip)
		go func() {
			tick := time.NewTicker(gossipEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopGossip:
					return
				case <-tick.C:
					if _, err := local.Squirrel().GossipTicks(1); err != nil {
						return
					}
				}
			}
		}()
	}
	srv := daemon.New(local, daemon.Config{
		Addr:     addr,
		MaxConns: maxConns,
		Logf:     logger.Printf,
	})
	if err := srv.Listen(); err != nil {
		return err
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	draining := make(chan struct{})
	shutdownErr := make(chan error, 1)
	go func() {
		s := <-sig
		logger.Printf("received %s; draining (budget %s, signal again to force)", s, drain)
		close(draining)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		go func() {
			<-sig
			logger.Printf("second signal; forcing shutdown")
			cancel()
		}()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(); err != nil {
		return err
	}
	// Serve returns as soon as the listener closes; if a signal started
	// the drain, hold the process open until it finishes flushing
	// in-flight requests.
	select {
	case <-draining:
		if err := <-shutdownErr; err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
	default:
	}
	logger.Printf("shutdown complete")
	return nil
}
