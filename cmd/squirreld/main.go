// Command squirreld is the Squirrel control-plane daemon: it owns a
// deployment (corpus, cluster, cVolumes) and serves the versioned
// wireproto protocol over TCP, so squirrelctl — and anything else that
// links internal/wireclient — drives registrations, boots, and
// lifecycle operations across a real socket instead of in-process
// calls.
//
// Usage:
//
//	squirreld                                  # listen on 127.0.0.1:7677
//	squirreld -addr :7677 -images 32 -nodes 16
//	squirreld -peers -traced                   # peer exchange + telemetry on
//	squirreld -index gossip                    # decentralized peer index, rounds on a ticker
//	squirreld -traced -metrics-addr :9090      # live /metrics + /telemetry HTTP surface
//	squirreld -version
//
// SIGTERM/SIGINT trigger graceful shutdown: the listener closes, no
// new requests are read, in-flight operations (boots included) run to
// completion and flush their responses, then the daemon exits. A
// second signal — or the drain timeout — forces it.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/ctlplane"
	"repro/internal/daemon"
	"repro/internal/version"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7677", "TCP listen address")
		nImages     = flag.Int("images", 16, "corpus size (images the deployment can register)")
		nNodes      = flag.Int("nodes", 8, "compute nodes")
		peers       = flag.Bool("peers", false, "enable the peer block exchange (with circuit breakers)")
		index       = flag.String("index", "", "content-index implementation: central (default) or gossip (decentralized TTL-lease directory; implies -peers)")
		gossipEvery = flag.Duration("gossip-interval", 2*time.Second, "wall-clock gossip round interval when -index gossip")
		traced      = flag.Bool("traced", false, "enable span tracing and unified telemetry")
		obsRing     = flag.Int("obs-ring", 0, "completed-operation trace ring size (default obs.DefaultRingSize; needs -traced)")
		sampleEvery = flag.Int("sample-every", 0, "head-sample tracing: trace every Nth root operation (0 or 1 traces everything; needs -traced)")
		metricsAddr = flag.String("metrics-addr", "", "serve live telemetry over HTTP at this address (/metrics Prometheus, /telemetry JSON; needs -traced)")
		bootLatency = flag.Duration("boot-latency", 0, "wall-clock per-boot device wait (demo/benchmark realism)")
		maxConns    = flag.Int("max-conns", daemon.DefaultMaxConns, "concurrent connection limit")
		drain       = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before in-flight requests are cancelled")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	logger := log.New(os.Stderr, "squirreld: ", log.LstdFlags)
	if *index == "gossip" {
		*peers = true
	}
	if err := run(logger, *addr, *metricsAddr, *nImages, *nNodes, *obsRing, *sampleEvery, *peers, *traced, *index, *gossipEvery, *bootLatency, *maxConns, *drain); err != nil {
		logger.Println(err)
		os.Exit(1)
	}
}

func run(logger *log.Logger, addr, metricsAddr string, nImages, nNodes, obsRing, sampleEvery int, peers, traced bool, index string, gossipEvery, bootLatency time.Duration, maxConns int, drain time.Duration) error {
	local, err := ctlplane.NewLocal(ctlplane.Options{
		Images:      nImages,
		Nodes:       nNodes,
		Peers:       peers,
		Traced:      traced,
		Index:       index,
		BootLatency: bootLatency,
		ObsRingSize: obsRing,
		SampleEvery: sampleEvery,
	})
	if err != nil {
		return err
	}
	// Under the decentralized index a live daemon runs gossip rounds on
	// a wall-clock ticker (tests and soaks drive rounds explicitly via
	// GossipTicks instead, so churn scenarios replay deterministically).
	if local.Squirrel().Gossip() != nil && gossipEvery > 0 {
		stopGossip := make(chan struct{})
		defer close(stopGossip)
		go func() {
			tick := time.NewTicker(gossipEvery)
			defer tick.Stop()
			for {
				select {
				case <-stopGossip:
					return
				case <-tick.C:
					if _, err := local.Squirrel().GossipTicks(1); err != nil {
						return
					}
				}
			}
		}()
	}
	srv := daemon.New(local, daemon.Config{
		Addr:     addr,
		MaxConns: maxConns,
		Logf:     logger.Printf,
		Tel:      local.Squirrel().Telemetry(),
	})
	if err := srv.Listen(); err != nil {
		return err
	}

	// The live telemetry surface is a plain HTTP mux on its own listener,
	// so a scrape can never interfere with control-plane framing.
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("squirreld: metrics listen %s: %w", metricsAddr, err)
		}
		defer mln.Close()
		logger.Printf("metrics listening on %s (/metrics Prometheus, /telemetry JSON)", mln.Addr())
		msrv := &http.Server{Handler: daemon.MetricsHandler(local.Squirrel().Telemetry())}
		defer msrv.Close()
		go func() {
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	draining := make(chan struct{})
	shutdownErr := make(chan error, 1)
	go func() {
		s := <-sig
		logger.Printf("received %s; draining (budget %s, signal again to force)", s, drain)
		close(draining)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		go func() {
			<-sig
			logger.Printf("second signal; forcing shutdown")
			cancel()
		}()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	if err := srv.Serve(); err != nil {
		return err
	}
	// Serve returns as soon as the listener closes; if a signal started
	// the drain, hold the process open until it finishes flushing
	// in-flight requests.
	select {
	case <-draining:
		if err := <-shutdownErr; err != nil {
			logger.Printf("drain incomplete: %v", err)
		}
	default:
	}
	logger.Printf("shutdown complete")
	return nil
}
