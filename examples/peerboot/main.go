// Peerboot: the peer block exchange serving a cold boot.
//
// Squirrel scatter-hoards every VMI cache on every compute node, but a
// replica can be missing — evicted for capacity, or the node joined
// after the image was registered. Without help, that node's next boot
// pulls the whole cache working set from the parallel file system. With
// the peer exchange enabled, the booting node looks the cache object up
// in the content index, picks the least-loaded neighbor that holds a
// replica, and transfers the missing ranges node-to-node, keeping the
// PFS out of the data path entirely.
//
// The second act turns on a lossy fabric: transfers drop, truncate and
// corrupt, the peer path fails over source by source and finally to the
// PFS, and the boot still verifies byte-exact.
//
// Run with: go run ./examples/peerboot
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/peer"
)

func main() {
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Peer = peer.DefaultPolicy()
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)
	im := repo.Images[0]
	if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered %s on 4 nodes; index holds %d announcements\n",
		im.ID, sq.PeerIndex().Entries())

	// node03 loses its replica (capacity eviction). Its next boot is a
	// cold miss — served by a neighbor, not the PFS.
	if err := sq.DropReplica("node03", im.ID); err != nil {
		log.Fatal(err)
	}
	cl.ResetCounters()
	rep, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: "node03", Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold boot on node03: %d peer bytes (top source %s), %d PFS bytes, verified byte-exact\n",
		rep.PeerBytes, rep.PeerNode, rep.NetworkBytes)
	if rep.PeerBytes == 0 || rep.NetworkBytes != 0 {
		log.Fatalf("expected an entirely peer-served boot, got %+v", rep)
	}
	var storageTx int64
	for _, sn := range cl.Storage {
		storageTx += sn.TxBytes()
	}
	if storageTx != 0 {
		log.Fatalf("storage nodes transmitted %d bytes", storageTx)
	}
	fmt.Println("storage nodes transmitted 0 bytes: the miss never reached the PFS")

	// Act two: the same miss under a hostile fabric. Every transfer rolls
	// against a seeded fault plan, so this run is exactly reproducible.
	inj, err := fault.New(fault.Plan{Seed: 42, Drop: 0.5, Truncate: 0.2, Corrupt: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	sq.SetFaults(inj)
	rep, err = sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: "node03", Verify: true})
	if err != nil {
		log.Fatal(err)
	}
	ctr := sq.PeerIndex().Counters()
	fmt.Printf("chaos boot (seed 42): %d peer bytes, %d PFS bytes after %d fallbacks, verified byte-exact\n",
		rep.PeerBytes, rep.NetworkBytes, rep.PeerFallbacks)
	fmt.Printf("  faults struck %d transfers (%d wasted bytes on truncated/corrupted streams)\n",
		ctr.Get("peer.fault"), ctr.Get("peer.wasted_bytes"))
	if ctr.Get("peer.fault") == 0 {
		log.Fatal("the fault plan never struck")
	}
}
