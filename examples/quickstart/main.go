// Quickstart: the smallest end-to-end Squirrel deployment.
//
// It builds a 4-storage / 4-compute cluster, registers three VM images
// (which multicasts their boot working sets to every compute node), boots
// one VM per node from warm replicas, and prints the network traffic —
// which is zero, the paper's headline property.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	// A small synthetic image repository (3 distro releases).
	spec := corpus.TestSpec()
	repo, err := corpus.New(spec)
	if err != nil {
		log.Fatal(err)
	}

	// A DAS-4-like slice: 4 storage nodes running the parallel file
	// system, 4 compute nodes, 1 GbE.
	cl, err := cluster.New(cluster.GigE, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Squirrel with the paper's configuration, scaled to the tiny test
	// corpus (4 KB blocks/clusters instead of 64 KB).
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		log.Fatal(err)
	}

	// Register three images: each registration captures the boot working
	// set on a storage node and multicasts the snapshot diff.
	now := time.Now()
	for i, im := range repo.Images[:3] {
		rep, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: now.Add(time.Duration(i) * time.Minute)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %-22s cache=%6d B, diff=%6d B → %d nodes\n",
			rep.ImageID, rep.CacheBytes, rep.DiffBytes, rep.Nodes)
	}

	// Boot one VM per compute node from warm replicas, verifying every
	// byte the VM reads against the true image content.
	cl.ResetCounters()
	for i, n := range cl.Compute {
		im := repo.Images[i%3]
		rep, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: n.ID, Verify: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("booted %-22s on %s: warm=%v read=%d B network=%d B\n",
			rep.ImageID, rep.NodeID, rep.Warm, rep.ReadBytes, rep.NetworkBytes)
	}
	fmt.Printf("\ntotal compute-node network traffic during boots: %d bytes\n", cl.ComputeRxTotal())

	st := sq.SCVolume().Stats()
	fmt.Printf("scVolume: %d caches, %.1f KB logical stored in %.1f KB disk (dedup ratio %.2f)\n",
		st.Objects, float64(st.LogicalBytes)/1024, float64(st.DiskBytes)/1024, st.DedupRatio)
}
