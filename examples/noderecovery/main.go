// Noderecovery: offline propagation (§3.5 of the paper).
//
// Compute nodes miss registration diffs while down. On reboot they ask
// the scVolume for the diff since their latest local snapshot:
//
//   - a briefly-offline node gets a small incremental stream;
//   - a node that was down longer than the retention window (its anchor
//     snapshot was garbage-collected) re-replicates the whole scVolume —
//     which is still only tens of KB here (tens of GB at paper scale,
//     the same order as a single VMI).
//
// Run with: go run ./examples/noderecovery
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, 3)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.RetentionDays = 7 // the paper's n
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)
	day := func(n int) time.Time { return t0.Add(time.Duration(n) * 24 * time.Hour) }

	// Day 0: first registrations reach all three nodes.
	for _, im := range repo.Images[:3] {
		if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: day(0)}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("day 0: registered 3 images on all nodes")

	// node01 goes down briefly; node02 goes down for a month.
	sq.SetOnline("node01", false)
	sq.SetOnline("node02", false)
	if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: repo.Images[3], At: day(2)}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("day 2: registered 1 image while node01 and node02 were down")

	// node01 returns within the window: incremental catch-up.
	sq.SetOnline("node01", true)
	rep, err := sq.SyncNode(context.Background(), "node01")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 3: node01 back → %-11s sync, %6d bytes\n", rep.Mode, rep.Bytes)

	// More registrations and a month of daily GC pass.
	for i, im := range repo.Images[4:8] {
		if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: day(4 + i)}); err != nil {
			log.Fatal(err)
		}
	}
	for d := 5; d <= 35; d++ {
		sq.GarbageCollect(day(d)) // the daily cron job
	}
	fmt.Println("day 4–35: 4 more registrations; daily GC destroyed the old snapshots")

	// node02 returns after the window: its anchor snapshot is gone, so
	// the incremental send fails and Squirrel re-replicates everything.
	sq.SetOnline("node02", true)
	rep, err = sq.SyncNode(context.Background(), "node02")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 35: node02 back → %-11s sync, %6d bytes\n", rep.Mode, rep.Bytes)

	// Both nodes now boot every registered image warm.
	for _, nodeID := range []string{"node01", "node02"} {
		warm := 0
		for _, id := range sq.Registered() {
			br, err := sq.Boot(context.Background(), core.BootRequest{Image: id, Node: nodeID, Verify: true})
			if err != nil {
				log.Fatal(err)
			}
			if br.Warm {
				warm++
			}
		}
		fmt.Printf("%s boots %d/%d images warm (verified byte-exact)\n",
			nodeID, warm, len(sq.Registered()))
	}
}
