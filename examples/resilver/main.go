// Resilver: at-rest integrity and peer-assisted repair.
//
// The paper gets block checksums, scrub and resilver "for free" by
// building cVolumes on ZFS (§2.2); this scenario walks the reproduction
// of that safety net end to end:
//
//  1. bits rot silently in one node's replica — reads fail their
//     checksum instead of serving bad bytes, and a verified boot still
//     succeeds by routing the damaged ranges around the replica;
//  2. a scrub detects every rotted block (physical checksums make
//     detection exact), quarantines the node, and withdraws it from the
//     peer index so it cannot serve anyone;
//  3. a resilver repairs the blocks bit-for-bit from healthy peer
//     replicas — the scattered hoard, not the PFS — and re-announces
//     the node;
//  4. a second node crashes mid-registration (torn zfs recv); on
//     restart the journal rolls the half-applied stream back and a
//     SyncNode catch-up heals it.
//
// Every step asserts its own invariants and exits nonzero on failure.
//
// Run with: go run ./examples/resilver
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/peer"
)

func main() {
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Peer = peer.DefaultPolicy()
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)
	day := func(n int) time.Time { return t0.Add(time.Duration(n) * 24 * time.Hour) }

	for _, im := range repo.Images[:3] {
		if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: day(0)}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("day 0: registered 3 images on 4 nodes")

	// Act 1: silent bit rot on node01. The damage is latent — nothing
	// knows about it yet — but a verified boot still returns perfect
	// bytes because every read re-checks the block checksum and damaged
	// ranges fall back to peers/PFS.
	inj, err := fault.New(fault.Plan{Seed: 99, Rot: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	sq.SetFaults(inj)
	refs, err := sq.InjectRot("node01")
	if err != nil {
		log.Fatal(err)
	}
	if len(refs) == 0 {
		log.Fatal("rot plan injected nothing")
	}
	br, err := sq.Boot(context.Background(), core.BootRequest{Image: repo.Images[0].ID, Node: "node01", Verify: true})
	if err != nil {
		log.Fatalf("boot on rotten node must still verify: %v", err)
	}
	fmt.Printf("day 1: %d blocks rotted on node01 — verified boot still clean (%d bytes re-fetched)\n",
		len(refs), br.NetworkBytes+br.PeerBytes)

	// Act 2: scrub. Detection must be exact, and the damaged node must
	// vanish from the peer exchange.
	srep, err := sq.ScrubNode(context.Background(), "node01", day(2))
	if err != nil {
		log.Fatal(err)
	}
	if srep.CorruptBlocks+srep.MissingBlocks == 0 {
		log.Fatal("scrub missed the injected rot")
	}
	var st core.NodeStatus
	for _, s := range sq.Health() {
		if s.NodeID == "node01" {
			st = s
		}
	}
	if st.State != core.StateResilvering || !st.Withdrawn {
		log.Fatalf("damaged node must be quarantined and withdrawn: %+v", st)
	}
	fmt.Printf("day 2: scrub detected %d damaged blocks; node01 is %s and withdrawn from the peer index\n",
		srep.CorruptBlocks+srep.MissingBlocks, st.State)

	// Act 3: resilver from the hoard. Healthy peers hold every block, so
	// not one repair byte should touch the PFS.
	rrep, err := sq.ResilverNode(context.Background(), "node01", day(2))
	if err != nil {
		log.Fatal(err)
	}
	if !rrep.Clean || rrep.Failed > 0 {
		log.Fatalf("resilver left damage: %+v", rrep)
	}
	if rrep.PFSBlocks > 0 {
		log.Fatalf("resilver used the PFS with healthy peers available: %+v", rrep)
	}
	fmt.Printf("day 2: resilver repaired %d/%d blocks from peers (%d bytes, %.3fs), 0 from the PFS\n",
		rrep.Repaired, rrep.Blocks, rrep.PeerBytes, rrep.XferSec)

	// Act 4: torn apply. node02 crashes mid-zfs-recv during the next
	// registration; restart finds the open journal, rolls the
	// half-applied stream back, and sync catches the node up.
	inj, err = fault.New(fault.Plan{Seed: 4, Torn: 1, MaxCrashes: 1})
	if err != nil {
		log.Fatal(err)
	}
	sq.SetFaults(inj)
	reg, err := sq.Register(context.Background(), core.RegisterRequest{Image: repo.Images[3], At: day(3)})
	if err != nil {
		log.Fatal(err)
	}
	if len(reg.Torn) == 0 {
		log.Fatal("torn plan did not tear any replica")
	}
	torn := reg.Torn[0]
	rec, err := sq.RestartNode(torn, day(4))
	if err != nil {
		log.Fatal(err)
	}
	if !rec.RolledBack {
		log.Fatalf("restart must roll the torn stream back: %+v", rec)
	}
	fmt.Printf("day 3–4: %s died mid-recv of %s; restart rolled the journal back after %s down\n",
		torn, rec.RolledBackSnap, rec.Downtime)

	// With Torn=1 every delivery rolled a tear; past the crash budget
	// those degrade to drops, so the surviving nodes exhausted their
	// repair retries and are merely lagging. Quiet the faults and let
	// SyncNode catch everyone up (a boot would heal them the same way).
	inj, err = fault.New(fault.Plan{})
	if err != nil {
		log.Fatal(err)
	}
	sq.SetFaults(inj)
	healed := 0
	for _, s := range sq.Health() {
		if s.Lagging {
			if _, err := sq.SyncNode(context.Background(), s.NodeID); err != nil {
				log.Fatal(err)
			}
			healed++
		}
	}
	fmt.Printf("day 4: SyncNode healed %d lagging replicas\n", healed)

	// Epilogue: everyone healthy, every image boots warm everywhere.
	for _, s := range sq.Health() {
		if s.State != core.StateHealthy {
			log.Fatalf("node %s still %s after repair", s.NodeID, s.State)
		}
	}
	warm := 0
	for _, id := range sq.Registered() {
		for _, n := range cl.Compute {
			b, err := sq.Boot(context.Background(), core.BootRequest{Image: id, Node: n.ID, Verify: true})
			if err != nil {
				log.Fatal(err)
			}
			if b.Warm {
				warm++
			}
		}
	}
	fmt.Printf("day 5: all nodes healthy; %d/%d boots warm and verified byte-exact\n",
		warm, len(sq.Registered())*len(cl.Compute))
}
