// Autoscale: the HPC / web-autoscaling scenario from the paper's
// introduction — one VM image booted simultaneously on many compute
// nodes (a parameter sweep, or a web tier scaling out).
//
// Without caches, every node pulls the same boot working set from the
// storage nodes, and the data-center network becomes the scalability
// bottleneck. With Squirrel, the working set is already on every node:
// scaling from 1 to 64 nodes adds zero network traffic.
//
// Run with: go run ./examples/autoscale
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	spec := corpus.TestSpec()
	repo, err := corpus.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	im := repo.Images[0]

	cl, err := cluster.New(cluster.GigE, 4, 64)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: time.Now()}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scaling out %s: one VM per node\n\n", im.ID)
	fmt.Printf("%-8s %-22s %-22s\n", "nodes", "with Squirrel (bytes)", "without caches (bytes)")
	for _, nodes := range []int{1, 4, 16, 64} {
		// With Squirrel: warm replicas everywhere.
		cl.ResetCounters()
		for i := 0; i < nodes; i++ {
			if _, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: cl.Compute[i].ID, Verify: false}); err != nil {
				log.Fatal(err)
			}
		}
		with := cl.ComputeRxTotal()

		// Without caches: every node streams the working set via the PFS.
		cl.ResetCounters()
		for i := 0; i < nodes; i++ {
			if _, err := sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: cl.Compute[i].ID, SkipCache: true}); err != nil {
				log.Fatal(err)
			}
		}
		without := cl.ComputeRxTotal()
		fmt.Printf("%-8d %-22d %-22d\n", nodes, with, without)
	}

	// The storage-node uplinks show where the bottleneck would be.
	var storTx int64
	for _, s := range cl.Storage {
		storTx += s.TxBytes()
	}
	fmt.Printf("\nstorage nodes transmitted %d bytes for the last uncached wave — the\n", storTx)
	fmt.Println("bottleneck the paper's §2.1 identifies; with Squirrel they transmit 0.")
}
