// Chaos: registration under fire.
//
// The paper's offline-propagation design (§3.5) exists because multicast
// registration (§3.2) is lossy and compute nodes crash. This scenario
// registers a stream of VMIs into a 16-node fleet while a seeded fault
// plan drops, truncates, and corrupts the propagation streams and
// crashes two nodes mid-transfer — and, mid-stream, a network partition
// strands a seeded minority of nodes behind a cut. Registrations never
// fail on replica-side faults: missed replicas are repaired over unicast
// with exponential backoff (NACK-style reliable multicast); replicas past
// the retry budget (or across the cut) go lagging and are healed by
// SyncNode. While the cut is open the stranded holders are withdrawn
// from the peer content index; the heal's anti-entropy pass re-announces
// them. At the end, every node must hold the latest scVolume snapshot
// and boot every image warm — byte-verified.
//
// The run is reproducible: every fault decision — including which nodes
// land behind the cut — is a pure function of the plan seed (change
// -seed semantics by editing plan.Seed below).
//
// Run with: go run ./examples/chaos
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/fault"
)

func main() {
	plan := fault.Plan{
		Seed:       20140623, // the paper's HPDC publication date
		Drop:       0.25,     // ≥20% multicast loss
		Truncate:   0.08,
		Corrupt:    0.15,
		Crash:      0.05,
		MaxCrashes: 2,
	}
	inj, err := fault.New(plan)
	if err != nil {
		log.Fatal(err)
	}
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		log.Fatal(err)
	}
	cl, err := cluster.New(cluster.GigE, 4, 16)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	cfg.Faults = inj
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Date(2014, 6, 23, 0, 0, 0, 0, time.UTC)
	fmt.Printf("fault plan: seed=%d drop=%.0f%% truncate=%.0f%% corrupt=%.0f%% crash=%.0f%% (budget %d)\n\n",
		plan.Seed, plan.Drop*100, plan.Truncate*100, plan.Corrupt*100, plan.Crash*100, plan.MaxCrashes)

	var computeIDs []string
	for _, n := range cl.Compute {
		computeIDs = append(computeIDs, n.ID)
	}

	const regs = 12
	for i := 0; i < regs; i++ {
		// Mid-stream, a network cut strands a seeded minority: streams
		// across the cut deliver partition faults, the stranded holders
		// are withdrawn from the peer index, and their replicas go
		// lagging until the post-heal sync.
		if i == regs/3 {
			minority := inj.PartitionPick("chaos", computeIDs, 3)
			if err := sq.PartitionNodes(minority...); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n*** PARTITION opens: %v stranded behind the cut ***\n\n", minority)
		}
		if i == 2*regs/3 {
			hrep, err := sq.HealPartition()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n*** PARTITION heals: %v rejoin; anti-entropy re-announced %d nodes, %d still lagging %v ***\n",
				hrep.Healed, hrep.Reannounced, len(hrep.Lagging), hrep.Lagging)
			for _, id := range hrep.Lagging {
				srep, err := sq.SyncNode(context.Background(), id)
				if err != nil {
					log.Fatalf("post-heal sync of %s: %v", id, err)
				}
				fmt.Printf("    sync %s: %s, %d bytes, healed=%v\n", id, srep.Mode, srep.Bytes, srep.Healed)
			}
			fmt.Println()
		}
		im := repo.Images[i]
		rep, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Hour)})
		if err != nil {
			log.Fatalf("registration %s: %v", im.ID, err)
		}
		line := fmt.Sprintf("register %-28s → %2d/16 synced", im.ID, rep.Nodes)
		if rep.Faults > 0 {
			line += fmt.Sprintf(", %2d faults, %d retries, %6d repair B",
				rep.Faults, rep.Retries, rep.RepairBytes)
		}
		for _, id := range rep.Crashed {
			line += fmt.Sprintf("  [%s CRASHED]", id)
		}
		for _, id := range rep.Lagging {
			line += fmt.Sprintf("  [%s lagging]", id)
		}
		fmt.Println(line)
	}

	ds := sq.Stats()
	fmt.Printf("\nafter the storm: %d online, %d lagging of %d nodes\n",
		ds.OnlineNodes, ds.LaggingNodes, ds.ComputeNodes)

	// Restart crashed nodes; the first boot on each node heals lagging
	// replicas through SyncNode (§3.5) before serving the VM.
	for _, n := range cl.Compute {
		if err := sq.SetOnline(n.ID, true); err != nil {
			log.Fatal(err)
		}
	}
	healed := 0
	want := sq.SCVolume().LatestSnapshot().Name
	latest := repo.Images[regs-1]
	for _, n := range cl.Compute {
		br, err := sq.Boot(context.Background(), core.BootRequest{Image: latest.ID, Node: n.ID, Verify: true})
		if err != nil {
			log.Fatalf("boot on %s: %v", n.ID, err)
		}
		if br.Healed {
			healed++
		}
		ccv, err := sq.CCVolume(n.ID)
		if err != nil {
			log.Fatal(err)
		}
		snap := ccv.LatestSnapshot()
		if snap == nil || snap.Name != want {
			log.Fatalf("%s did not converge to %s", n.ID, want)
		}
		if !br.Warm {
			log.Fatalf("%s failed to boot warm after healing", n.ID)
		}
	}
	fmt.Printf("recovery: %d nodes healed on first boot; all 16 converged to %s\n", healed, want)

	// Full verification sweep: every image boots warm and byte-exact on
	// every node.
	warm := 0
	for _, n := range cl.Compute {
		for _, id := range sq.Registered() {
			br, err := sq.Boot(context.Background(), core.BootRequest{Image: id, Node: n.ID, Verify: true})
			if err != nil {
				log.Fatalf("verify boot %s on %s: %v", id, n.ID, err)
			}
			if br.Warm {
				warm++
			}
		}
	}
	fmt.Printf("verification: %d/%d boots warm and byte-exact\n\n", warm, 16*regs)
	fmt.Printf("chaos accounting:\n%s", inj.Counters())
}
