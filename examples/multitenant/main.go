// Multitenant: the large public-cloud scenario — many users concurrently
// starting VMs from *different* images (the paper's §2.1 second case,
// where storage nodes become the bottleneck, and the workload behind
// Fig 18).
//
// Every compute node boots several VMs, each from a distinct VMI. The
// example compares compute-node network traffic with Squirrel's fully
// replicated caches against the no-caching baseline, and prints the
// scVolume's dedup efficiency over the whole registered repository.
//
// Run with: go run ./examples/multitenant
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/corpus"
)

func main() {
	repo, err := corpus.New(corpus.TestSpec())
	if err != nil {
		log.Fatal(err)
	}

	cl, err := cluster.New(cluster.QDR, 4, 8)
	if err != nil {
		log.Fatal(err)
	}
	pfs, err := cluster.NewPFS(cl, 2, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.ClusterSize = 4096
	cfg.Volume.BlockSize = 4096
	sq, err := core.New(cfg, cl, pfs)
	if err != nil {
		log.Fatal(err)
	}

	// Register the whole community repository (24 images, 3 distros).
	t0 := time.Now()
	var diffTotal int64
	for i, im := range repo.Images {
		rep, err := sq.Register(context.Background(), core.RegisterRequest{Image: im, At: t0.Add(time.Duration(i) * time.Minute)})
		if err != nil {
			log.Fatal(err)
		}
		diffTotal += rep.DiffBytes
	}
	fmt.Printf("registered %d images; propagation shipped %.1f KB for %.1f KB of caches\n",
		len(repo.Images), float64(diffTotal)/1024, float64(repo.CacheBytes())/1024)

	st := sq.SCVolume().Stats()
	fmt.Printf("each cVolume replica: %.1f KB disk + %.1f KB DDT memory for all %d caches (dedup %.2f)\n\n",
		float64(st.DiskBytes)/1024, float64(st.DDTMemBytes)/1024, st.Objects, st.DedupRatio)

	// Concurrent multi-user startup wave: 4 VMs per node, all distinct
	// images.
	const vmsPerNode = 3
	boot := func(uncached bool) int64 {
		cl.ResetCounters()
		img := 0
		for _, n := range cl.Compute {
			for v := 0; v < vmsPerNode; v++ {
				im := repo.Images[img%len(repo.Images)]
				img++
				var err error
				if uncached {
					_, err = sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: n.ID, SkipCache: true})
				} else {
					_, err = sq.Boot(context.Background(), core.BootRequest{Image: im.ID, Node: n.ID, Verify: false})
				}
				if err != nil {
					log.Fatal(err)
				}
			}
		}
		return cl.ComputeRxTotal()
	}
	with := boot(false)
	without := boot(true)
	vms := len(cl.Compute) * vmsPerNode
	fmt.Printf("startup wave of %d VMs (%d nodes × %d VMs, all different images):\n",
		vms, len(cl.Compute), vmsPerNode)
	fmt.Printf("  with Squirrel:   %8d bytes over the network\n", with)
	fmt.Printf("  without caches:  %8d bytes over the network\n", without)
	fmt.Println("\nSquirrel keeps VM startup entirely local, for every image at once —")
	fmt.Println("scatter hoarding in action (paper §4.4, Fig 18).")
}
