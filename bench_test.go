// Benchmarks regenerating every table and figure of the paper's
// evaluation, one per experiment. Each iteration runs the full experiment
// at bench scale (a small corpus, so the suite finishes on one core);
// cmd/experiments runs the same code at larger scales.
//
// Key figures also report their headline metric via b.ReportMetric, so
// `go test -bench=.` output doubles as a quick shape check.
package repro_test

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// benchScale keeps each experiment around a second on one core.
var benchScale = experiments.Scale{Count: 0.02, Size: 0.15}

// runExperiment is the common bench body.
func runExperiment(b *testing.B, id string) experiments.Table {
	b.Helper()
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	var tb experiments.Table
	for i := 0; i < b.N; i++ {
		tb, err = e.Run(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(tb.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	return tb
}

// lastFloat extracts a numeric cell for ReportMetric (best effort).
func lastFloat(tb experiments.Table, row, col int) float64 {
	if row < 0 {
		row += len(tb.Rows)
	}
	if row < 0 || row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		return 0
	}
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkFig2CompressionRatio(b *testing.B) {
	tb := runExperiment(b, "fig2")
	b.ReportMetric(lastFloat(tb, 0, 1), "cache-dedup@1K")
}

func BenchmarkFig3Codecs(b *testing.B) {
	runExperiment(b, "fig3")
}

func BenchmarkFig4CCR(b *testing.B) {
	tb := runExperiment(b, "fig4")
	b.ReportMetric(lastFloat(tb, -1, 1), "cache-CCR@1M")
}

func BenchmarkTable1Storage(b *testing.B) {
	runExperiment(b, "tab1")
}

func BenchmarkTable2Dataset(b *testing.B) {
	runExperiment(b, "tab2")
}

func BenchmarkFig8Disk(b *testing.B) {
	runExperiment(b, "fig8")
}

func BenchmarkFig9DDTDisk(b *testing.B) {
	runExperiment(b, "fig9")
}

func BenchmarkFig10DDTMemory(b *testing.B) {
	runExperiment(b, "fig10")
}

func BenchmarkFig11BootTime(b *testing.B) {
	tb := runExperiment(b, "fig11")
	// Column 1 is warm-zfs; report the 64 KB row (second from last).
	b.ReportMetric(lastFloat(tb, -2, 1), "warm-zfs-64K-sec")
}

func BenchmarkFig11CodecAblation(b *testing.B) {
	runExperiment(b, "fig11codec")
}

func BenchmarkFig12CrossSimilarity(b *testing.B) {
	tb := runExperiment(b, "fig12")
	b.ReportMetric(lastFloat(tb, 2, 2), "cache-sim@4K")
}

func BenchmarkFig13Iterative(b *testing.B) {
	runExperiment(b, "fig13")
}

func BenchmarkFig14DiskFit(b *testing.B) {
	runExperiment(b, "fig14")
}

func BenchmarkFig15DiskExtrapolation(b *testing.B) {
	runExperiment(b, "fig15")
}

func BenchmarkFig16MemoryFit(b *testing.B) {
	runExperiment(b, "fig16")
}

func BenchmarkFig17MemoryExtrapolation(b *testing.B) {
	runExperiment(b, "fig17")
}

func BenchmarkFig18NetworkTransfer(b *testing.B) {
	tb := runExperiment(b, "fig18")
	b.ReportMetric(lastFloat(tb, -1, 1), "with-caches-MB")
}

func BenchmarkFig18PropagationAblation(b *testing.B) {
	runExperiment(b, "fig18prop")
}

func BenchmarkTable3DiskRMSE(b *testing.B) {
	runExperiment(b, "tab3")
}

func BenchmarkTable4MemoryRMSE(b *testing.B) {
	runExperiment(b, "tab4")
}

func BenchmarkFigPeerExchange(b *testing.B) {
	tb := runExperiment(b, "figpeer")
	b.ReportMetric(lastFloat(tb, -1, 4), "peer-share-%")
}

func BenchmarkFigScrubResilver(b *testing.B) {
	tb := runExperiment(b, "figscrub")
	// Detection coverage at the highest rot rate must be 100.
	b.ReportMetric(lastFloat(tb, -1, 3), "scrub-detected-%")
	b.ReportMetric(lastFloat(tb, -1, 5), "resilver-peer-share-%")
}

func BenchmarkFigTraceBootBreakdown(b *testing.B) {
	tb := runExperiment(b, "figtrace")
	// Row 1 is the peer-exchange lane; column 2 its byte share. The
	// experiment itself errors if span and report accounting diverge.
	b.ReportMetric(lastFloat(tb, 1, 2), "peer-byte-share-%")
}
